package topology

import (
	"math"
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/units"
)

func testSpecs() []SiteSpec {
	return []SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "dallas", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
		{Metro: "seattle", FrontEnd: true, Peering: true},
		{Metro: "denver", FrontEnd: false, Peering: true}, // peering-only
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "frankfurt", FrontEnd: true, Peering: true},
		{Metro: "stockholm", FrontEnd: true, Peering: true},
		{Metro: "moscow", FrontEnd: false, Peering: false}, // backbone-only
	}
}

func mustBuild(t *testing.T) *Backbone {
	t.Helper()
	b, err := Build(testSpecs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 3); err == nil {
		t.Error("empty specs should fail")
	}
	if _, err := Build([]SiteSpec{{Metro: "atlantis", FrontEnd: true, Peering: true}}, 3); err == nil {
		t.Error("unknown metro should fail")
	}
	if _, err := Build([]SiteSpec{
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "london", FrontEnd: true, Peering: true},
	}, 3); err == nil {
		t.Error("duplicate metro should fail")
	}
	if _, err := Build([]SiteSpec{{Metro: "london", Peering: true}}, 3); err == nil {
		t.Error("no front-ends should fail")
	}
	if _, err := Build([]SiteSpec{{Metro: "london", FrontEnd: true}}, 3); err == nil {
		t.Error("no peering should fail")
	}
}

func TestBackboneConnected(t *testing.T) {
	b := mustBuild(t)
	for i := 0; i < b.NumSites(); i++ {
		for j := 0; j < b.NumSites(); j++ {
			if math.IsInf(b.IGPDistanceKm(SiteID(i), SiteID(j)).Float(), 1) {
				t.Fatalf("sites %d and %d are disconnected", i, j)
			}
		}
	}
}

func TestIGPMetricProperties(t *testing.T) {
	b := mustBuild(t)
	n := b.NumSites()
	for i := 0; i < n; i++ {
		if b.IGPDistanceKm(SiteID(i), SiteID(i)) != 0 {
			t.Fatalf("self distance of %d non-zero", i)
		}
		for j := 0; j < n; j++ {
			dij := b.IGPDistanceKm(SiteID(i), SiteID(j))
			dji := b.IGPDistanceKm(SiteID(j), SiteID(i))
			if math.Abs(dij.Float()-dji.Float()) > 1e-6 {
				t.Fatalf("IGP distance not symmetric: %v vs %v", dij, dji)
			}
			// IGP distance can never beat great-circle distance.
			air := geo.DistanceKm(b.Site(SiteID(i)).Metro.Point, b.Site(SiteID(j)).Metro.Point)
			if dij < air-1 {
				t.Fatalf("IGP distance %v beats air distance %v", dij, air)
			}
			// Triangle inequality via any intermediate k.
			for k := 0; k < n; k++ {
				if dij > b.IGPDistanceKm(SiteID(i), SiteID(k))+b.IGPDistanceKm(SiteID(k), SiteID(j))+1e-6 {
					t.Fatalf("triangle inequality violated i=%d j=%d k=%d", i, j, k)
				}
			}
		}
	}
}

func TestHotPotatoFrontEnd(t *testing.T) {
	b := mustBuild(t)
	for i := 0; i < b.NumSites(); i++ {
		fe, d := b.HotPotatoFrontEnd(SiteID(i))
		if fe == InvalidSite {
			t.Fatalf("no front-end reachable from site %d", i)
		}
		if !b.Site(fe).FrontEnd {
			t.Fatalf("hot-potato target %d is not a front-end", fe)
		}
		// The chosen FE must be at the minimum IGP distance among FEs.
		for _, other := range b.FrontEnds() {
			if b.IGPDistanceKm(SiteID(i), other) < d-1e-6 {
				t.Fatalf("site %d: FE %d closer than chosen %d", i, other, fe)
			}
		}
		// A front-end site serves itself at distance 0.
		if b.Site(SiteID(i)).FrontEnd && (fe != SiteID(i) || d != 0) {
			t.Fatalf("front-end site %d should serve itself", i)
		}
	}
}

func TestPeeringOnlySiteCostsBackbone(t *testing.T) {
	b := mustBuild(t)
	var denver SiteID = InvalidSite
	for _, s := range b.Sites {
		if s.Metro.Name == "denver" {
			denver = s.ID
		}
	}
	if denver == InvalidSite {
		t.Fatal("denver missing")
	}
	fe, d := b.HotPotatoFrontEnd(denver)
	if d <= 0 {
		t.Fatalf("peering-only site should pay backbone distance, got %v", d)
	}
	if !b.Site(fe).FrontEnd {
		t.Fatal("target is not a front-end")
	}
}

func TestPathReconstruction(t *testing.T) {
	b := mustBuild(t)
	for i := 0; i < b.NumSites(); i++ {
		for j := 0; j < b.NumSites(); j++ {
			p := b.Path(SiteID(i), SiteID(j))
			if len(p) == 0 {
				t.Fatalf("no path %d->%d", i, j)
			}
			if p[0] != SiteID(i) || p[len(p)-1] != SiteID(j) {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			// Path length must equal the IGP distance.
			var total units.Kilometers
			for k := 1; k < len(p); k++ {
				total += geo.DistanceKm(b.Site(p[k-1]).Metro.Point, b.Site(p[k]).Metro.Point)
			}
			if math.Abs(total.Float()-b.IGPDistanceKm(SiteID(i), SiteID(j)).Float()) > 1e-6 {
				t.Fatalf("path cost %v != IGP distance %v for %d->%d",
					total, b.IGPDistanceKm(SiteID(i), SiteID(j)), i, j)
			}
		}
	}
}

func TestNearestSiteByAir(t *testing.T) {
	b := mustBuild(t)
	boston, _ := geo.FindMetro("boston")
	id, d := b.NearestSiteByAir(boston.Point, true)
	if b.Site(id).Metro.Name != "new-york" {
		t.Fatalf("nearest peering to boston = %s", b.Site(id).Metro.Name)
	}
	if d < 100 || d > 500 {
		t.Fatalf("boston-NY distance %v out of range", d)
	}
	// Moscow is a backbone-only site: with onlyPeering, the nearest peering
	// site from moscow must be elsewhere (stockholm).
	moscow, _ := geo.FindMetro("moscow")
	id, _ = b.NearestSiteByAir(moscow.Point, true)
	if b.Site(id).Metro.Name != "stockholm" {
		t.Fatalf("nearest peering to moscow = %s, want stockholm", b.Site(id).Metro.Name)
	}
}

func TestRankPeeringByAir(t *testing.T) {
	b := mustBuild(t)
	ny := b.Site(0).Metro.Point
	order := b.RankPeeringByAir(ny)
	if len(order) != len(b.PeeringSites()) {
		t.Fatalf("rank size %d != peering count %d", len(order), len(b.PeeringSites()))
	}
	prev := units.Kilometers(-1)
	for _, id := range order {
		if !b.Site(id).Peering {
			t.Fatalf("non-peering site %d in peering ranking", id)
		}
		d := geo.DistanceKm(ny, b.Site(id).Metro.Point)
		if d < prev {
			t.Fatal("ranking not sorted by distance")
		}
		prev = d
	}
	if b.Site(order[0]).Metro.Name != "new-york" {
		t.Fatalf("nearest peering to NY point = %s", b.Site(order[0]).Metro.Name)
	}
}

func TestFrontEndsAndPeeringAccessorsCopy(t *testing.T) {
	b := mustBuild(t)
	fes := b.FrontEnds()
	fes[0] = 999
	if b.FrontEnds()[0] == 999 {
		t.Fatal("FrontEnds returned shared slice")
	}
	ps := b.PeeringSites()
	ps[0] = 999
	if b.PeeringSites()[0] == 999 {
		t.Fatal("PeeringSites returned shared slice")
	}
}

func TestBuildISPs(t *testing.T) {
	b := mustBuild(t)
	metros := geo.World()
	cfg := DefaultISPModelConfig(42)
	model := BuildISPs(b, metros, cfg)
	if model.Len() == 0 {
		t.Fatal("no ISPs generated")
	}
	countries := map[string]bool{}
	for _, m := range metros {
		countries[m.Country] = true
	}
	policies := map[EgressPolicy]int{}
	for _, isp := range model.ISPs {
		if !countries[isp.Country] {
			t.Errorf("ISP %s has unknown country %q", isp.Name, isp.Country)
		}
		if len(isp.Hubs) == 0 {
			t.Errorf("ISP %s has no hub", isp.Name)
		}
		for _, h := range isp.Hubs {
			if !b.Site(h).Peering {
				t.Errorf("ISP %s hub %d is not a peering site", isp.Name, h)
			}
		}
		policies[isp.Policy]++
	}
	for c := range countries {
		if len(model.ForCountry(c)) < cfg.PerCountry {
			t.Errorf("country %s has %d ISPs, want >= %d", c, len(model.ForCountry(c)), cfg.PerCountry)
		}
	}
	total := float64(model.Len())
	if frac := float64(policies[Centralized]) / total; frac < 0.20 || frac > 0.50 {
		t.Errorf("centralized fraction %.2f far from configured 0.35", frac)
	}
	if frac := float64(policies[TieBreak]) / total; frac < 0.05 || frac > 0.26 {
		t.Errorf("tie-break fraction %.2f far from configured 0.15", frac)
	}
	// Single-interconnect applies only to centralized ISPs, and to a
	// substantial share of them.
	si := 0
	for _, isp := range model.ISPs {
		if isp.SingleInterconnect {
			si++
			if isp.Policy != Centralized {
				t.Errorf("non-centralized ISP %s marked single-interconnect", isp.Name)
			}
		}
	}
	if policies[Centralized] > 10 {
		if frac := float64(si) / float64(policies[Centralized]); frac < 0.25 || frac > 0.75 {
			t.Errorf("single-interconnect fraction of centralized = %.2f, want ~0.5", frac)
		}
	}
	if policies[HotPotato] == 0 {
		t.Error("no hot-potato ISPs")
	}
}

func TestBuildISPsDeterministic(t *testing.T) {
	b := mustBuild(t)
	metros := geo.World()
	m1 := BuildISPs(b, metros, DefaultISPModelConfig(7))
	m2 := BuildISPs(b, metros, DefaultISPModelConfig(7))
	if m1.Len() != m2.Len() {
		t.Fatal("ISP counts differ across identical builds")
	}
	for i := range m1.ISPs {
		a, c := m1.ISPs[i], m2.ISPs[i]
		if a.Name != c.Name || a.Policy != c.Policy || a.TieBreakSalt != c.TieBreakSalt {
			t.Fatalf("ISP %d differs across identical builds", i)
		}
	}
}

func TestEgressPolicyString(t *testing.T) {
	if HotPotato.String() != "hot-potato" || Centralized.String() != "centralized" ||
		TieBreak.String() != "tie-break" {
		t.Fatal("policy names wrong")
	}
	if EgressPolicy(99).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func BenchmarkBuildBackbone(b *testing.B) {
	specs := testSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(specs, 3); err != nil {
			b.Fatal(err)
		}
	}
}
