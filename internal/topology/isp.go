package topology

import (
	"fmt"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/xrand"
)

// EgressPolicy is how an ISP chooses the peering point toward the CDN for a
// given client. The mix of policies across ISPs is what makes anycast
// sometimes, but not always, land clients at a nearby front-end.
type EgressPolicy int

// Egress policies observed in the paper's case studies.
const (
	// HotPotato exits at the peering site nearest to the client — the
	// behaviour that makes anycast work well when peering is uniform.
	HotPotato EgressPolicy = iota
	// Centralized carries all of the ISP's traffic to one or two national
	// hub peering sites regardless of client location (the paper's
	// "ISP carrying traffic from a client in Denver to Phoenix" and
	// "Moscow to Stockholm" examples).
	Centralized
	// TieBreak picks among the few nearest peering sites using a stable
	// but geography-blind tie-break (AS-path and router-ID artifacts),
	// modeling "BGP's lack of insight into the underlying topology".
	TieBreak
)

func (p EgressPolicy) String() string {
	switch p {
	case HotPotato:
		return "hot-potato"
	case Centralized:
		return "centralized"
	case TieBreak:
		return "tie-break"
	default:
		return fmt.Sprintf("EgressPolicy(%d)", int(p))
	}
}

// ISPID identifies an ISP.
type ISPID int

// ISP is a client-side access network.
type ISP struct {
	ID      ISPID
	Name    string
	Country string
	Policy  EgressPolicy
	// Hubs are the peering sites a Centralized ISP uses. For other
	// policies Hubs is the LDNS placement hint (regional hub metro).
	Hubs []SiteID
	// SingleInterconnect marks a Centralized ISP that reaches the CDN
	// through exactly one interconnect: ALL its CDN-bound traffic —
	// anycast and the beacon's unicast prefixes alike — is hauled through
	// the hub. Such clients are far from their front-end but see no
	// unicast improvement, because the unicast path shares the detour.
	// Multi-interconnect centralized ISPs misroute only the anycast
	// prefix (a BGP tie-break artifact); their unicast paths are sane.
	SingleInterconnect bool
	// TieBreakSalt makes each TieBreak ISP's blind choice stable but
	// different from other ISPs'.
	TieBreakSalt uint64
}

// ISPModelConfig controls synthetic ISP generation.
type ISPModelConfig struct {
	Seed uint64
	// PerCountry is how many ISPs to create per country present in the
	// metro catalog (minimum 1).
	PerCountry int
	// CentralizedFrac and TieBreakFrac are the probability that a
	// generated ISP uses those policies; the remainder are HotPotato.
	CentralizedFrac float64
	TieBreakFrac    float64
	// TransitAbroadFrac applies to Centralized ISPs in countries with no
	// domestic peering: the probability that such an ISP reaches the CDN
	// through a foreign transit provider's hub (possibly on another
	// continent) rather than the nearest peering site. This models the
	// severe tail of anycast misdirection: regional ISPs whose transit
	// hands traffic to the CDN at the transit provider's home exchange.
	TransitAbroadFrac float64
	// SingleInterconnectFrac is the probability that a Centralized ISP
	// has only one interconnect (see ISP.SingleInterconnect).
	SingleInterconnectFrac float64
}

// DefaultISPModelConfig matches the calibration in DESIGN.md: most ISPs
// behave, a minority exhibit the pathologies of §5.
func DefaultISPModelConfig(seed uint64) ISPModelConfig {
	return ISPModelConfig{
		Seed:                   seed,
		PerCountry:             3,
		CentralizedFrac:        0.35,
		TieBreakFrac:           0.15,
		TransitAbroadFrac:      0.70,
		SingleInterconnectFrac: 0.60,
	}
}

// transitHubMetros are the global exchanges where international transit
// providers interconnect with the CDN.
var transitHubMetros = []string{
	"london", "frankfurt", "new-york", "los-angeles", "miami", "singapore",
}

// ISPModel is the set of generated ISPs, indexable by country for client
// assignment.
type ISPModel struct {
	ISPs      []ISP
	byCountry map[string][]ISPID
}

// BuildISPs generates ISPs for every country in the metro catalog. Each
// ISP's hub is the largest-weight metro of its country that is nearest to a
// peering site (approximating where national carriers concentrate their
// interconnection).
func BuildISPs(b *Backbone, metros []geo.Metro, cfg ISPModelConfig) *ISPModel {
	if cfg.PerCountry < 1 {
		cfg.PerCountry = 1
	}
	// Group metros by country; pick hub candidates by descending weight.
	byCountry := map[string][]geo.Metro{}
	var countries []string
	for _, m := range metros {
		if len(byCountry[m.Country]) == 0 {
			countries = append(countries, m.Country)
		}
		byCountry[m.Country] = append(byCountry[m.Country], m)
	}
	// Resolve the transit hub sites once.
	var transitSites []SiteID
	for _, name := range transitHubMetros {
		if m, ok := geo.FindMetro(name); ok {
			if s, _ := b.NearestSiteByAir(m.Point, true); s != InvalidSite {
				transitSites = append(transitSites, s)
			}
		}
	}
	// Countries with a domestic peering site are immune to the
	// transit-abroad pathology.
	domesticPeering := map[string]bool{}
	for _, s := range b.Sites {
		if s.Peering {
			domesticPeering[s.Metro.Country] = true
		}
	}
	model := &ISPModel{byCountry: map[string][]ISPID{}}
	for _, country := range countries {
		ms := byCountry[country]
		// Hub metro: the heaviest metro of the country.
		hub := ms[0]
		for _, m := range ms {
			if m.Weight > hub.Weight {
				hub = m
			}
		}
		hubSite, _ := b.NearestSiteByAir(hub.Point, true)
		for k := 0; k < cfg.PerCountry; k++ {
			id := ISPID(len(model.ISPs))
			rs := xrand.Substream(cfg.Seed, "isp", uint64(id))
			policy := HotPotato
			r := rs.Float64()
			switch {
			case r < cfg.CentralizedFrac:
				policy = Centralized
			case r < cfg.CentralizedFrac+cfg.TieBreakFrac:
				policy = TieBreak
			}
			isp := ISP{
				ID:           id,
				Name:         fmt.Sprintf("as-%s-%d", country, k+1),
				Country:      country,
				Policy:       policy,
				Hubs:         []SiteID{hubSite},
				TieBreakSalt: rs.Uint64(),
			}
			if policy == Centralized {
				isp.SingleInterconnect = rs.Bool(cfg.SingleInterconnectFrac)
			}
			// The severe pathology: a centralized ISP whose transit
			// provider homes its traffic at a distant global exchange.
			// It dominates where the CDN has no domestic peering, but the
			// paper's case studies (Denver→Phoenix, Moscow→Stockholm)
			// show it also occurs where direct peering exists at the
			// source city, so well-peered countries get a reduced rate.
			transitAbroad := false
			if policy == Centralized && len(transitSites) > 0 {
				rate := cfg.TransitAbroadFrac
				if domesticPeering[country] {
					rate /= 3
				}
				if rs.Bool(rate) {
					isp.Hubs = []SiteID{transitSites[rs.Intn(len(transitSites))]}
					transitAbroad = true
				}
			}
			// Most centralized ISPs in large countries run more than one
			// hub: the peering sites nearest their second and third
			// heaviest metros, which bounds how far any client is hauled.
			if policy == Centralized && !transitAbroad {
				probs := []float64{0.65, 0.45}
				for _, m := range topMetrosExcluding(ms, hub.Name, 2) {
					p := probs[0]
					probs = probs[1:]
					if !rs.Bool(p) {
						continue
					}
					s, _ := b.NearestSiteByAir(m.Point, true)
					if !containsSite(isp.Hubs, s) {
						isp.Hubs = append(isp.Hubs, s)
					}
				}
			}
			model.ISPs = append(model.ISPs, isp)
			model.byCountry[country] = append(model.byCountry[country], id)
		}
	}
	return model
}

// topMetrosExcluding returns up to n heaviest metros of ms excluding the
// named one, in descending weight order.
func topMetrosExcluding(ms []geo.Metro, exclude string, n int) []geo.Metro {
	cand := make([]geo.Metro, 0, len(ms))
	for _, m := range ms {
		if m.Name != exclude {
			cand = append(cand, m)
		}
	}
	// Selection by repeated max keeps this simple; country metro lists
	// are short.
	var out []geo.Metro
	for len(out) < n && len(cand) > 0 {
		best := 0
		for i, m := range cand {
			if m.Weight > cand[best].Weight {
				best = i
			}
		}
		out = append(out, cand[best])
		cand = append(cand[:best], cand[best+1:]...)
	}
	return out
}

func containsSite(sites []SiteID, s SiteID) bool {
	for _, x := range sites {
		if x == s {
			return true
		}
	}
	return false
}

// ForCountry returns the ISP IDs serving a country. Every catalog country
// has at least one.
func (m *ISPModel) ForCountry(country string) []ISPID {
	return m.byCountry[country]
}

// ISP returns the ISP with the given ID.
func (m *ISPModel) ISP(id ISPID) ISP { return m.ISPs[id] }

// Len returns the number of ISPs.
func (m *ISPModel) Len() int { return len(m.ISPs) }
