package trace

import (
	"strings"
	"testing"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

func tracer(t *testing.T) (*Tracer, *topology.Backbone, *topology.ISPModel) {
	t.Helper()
	dep, err := cdn.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	isps := topology.BuildISPs(dep.Backbone, geo.World(), topology.DefaultISPModelConfig(1))
	router := bgp.NewRouter(dep.Backbone, isps, 42, bgp.DefaultConfig())
	return &Tracer{
		Router:  router,
		Latency: latency.NewModel(5, latency.DefaultConfig()),
	}, dep.Backbone, isps
}

func centralizedISP(t *testing.T, isps *topology.ISPModel) topology.ISPID {
	t.Helper()
	for _, isp := range isps.ISPs {
		if isp.Policy == topology.Centralized {
			return isp.ID
		}
	}
	t.Fatal("no centralized ISP")
	return 0
}

func hotPotatoISP(t *testing.T, isps *topology.ISPModel, country string) topology.ISPID {
	t.Helper()
	for _, id := range isps.ForCountry(country) {
		if isps.ISP(id).Policy == topology.HotPotato {
			return id
		}
	}
	for _, isp := range isps.ISPs {
		if isp.Policy == topology.HotPotato {
			return isp.ID
		}
	}
	t.Fatal("no hot-potato ISP")
	return 0
}

func TestTraceAnycastEndsAtFrontEnd(t *testing.T) {
	tr, bb, isps := tracer(t)
	boston, _ := geo.FindMetro("boston")
	c := bgp.Client{PrefixID: 1, Point: boston.Point, ISP: hotPotatoISP(t, isps, "US")}
	trace := tr.TraceAnycast(c, 0)
	if !trace.Anycast {
		t.Fatal("trace not marked anycast")
	}
	if len(trace.Hops) < 2 {
		t.Fatalf("trace too short: %+v", trace.Hops)
	}
	last := trace.Hops[len(trace.Hops)-1]
	if last.Kind != HopFrontEnd {
		t.Fatalf("last hop is %v, want front-end", last.Kind)
	}
	found := false
	for _, fe := range bb.FrontEnds() {
		if bb.Site(fe).Metro.Name == last.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("last hop %q is not a front-end site", last.Name)
	}
	// Cumulative distance and RTT must be non-decreasing.
	prevKm, prevRTT := units.Kilometers(-1), units.Millis(-1)
	for _, h := range trace.Hops {
		if h.CumulativeKm < prevKm || h.EstRTTms < prevRTT {
			t.Fatalf("non-monotone trace: %+v", trace.Hops)
		}
		prevKm, prevRTT = h.CumulativeKm, h.EstRTTms
	}
}

func TestTraceUnicastTwoHops(t *testing.T) {
	tr, bb, _ := tracer(t)
	boston, _ := geo.FindMetro("boston")
	c := bgp.Client{PrefixID: 1, Point: boston.Point}
	fe := bb.FrontEnds()[0]
	trace := tr.TraceUnicast(c, fe)
	if trace.Anycast {
		t.Fatal("unicast trace marked anycast")
	}
	if len(trace.Hops) != 2 {
		t.Fatalf("unicast trace has %d hops, want 2", len(trace.Hops))
	}
	if trace.TotalKm() <= 0 {
		t.Fatal("unicast trace has zero distance")
	}
}

func TestDiagnoseWellRouted(t *testing.T) {
	tr, _, isps := tracer(t)
	// A client in Boston (which hosts a front-end) on a well-behaved ISP
	// should be near-optimal... unless the hot-potato miss fires, so scan
	// a few prefixes for a near-optimal one.
	boston, _ := geo.FindMetro("boston")
	ispID := hotPotatoISP(t, isps, "US")
	for p := uint64(0); p < 30; p++ {
		d := tr.Diagnose(bgp.Client{PrefixID: p, Point: boston.Point, ISP: ispID}, 0)
		if d.Category == "anycast near-optimal" {
			if d.ExcessKm >= 100 {
				t.Fatalf("near-optimal with %v excess km", d.ExcessKm)
			}
			return
		}
	}
	t.Fatal("no near-optimal diagnosis found for a well-placed client")
}

func TestDiagnoseRemotePeering(t *testing.T) {
	tr, _, isps := tracer(t)
	// Find a centralized ISP whose hub is far from some client metro, and
	// verify the diagnosis flags it.
	ispID := centralizedISP(t, isps)
	isp := isps.ISP(ispID)
	// Place the client far from the hub: scan metros of the ISP's country
	// and pick the farthest from hub.
	bb := tr.Router.Backbone()
	hubPt := bb.Site(isp.Hubs[0]).Metro.Point
	var clientPt geo.Point
	best := -1.0
	for _, m := range geo.World() {
		if m.Country != isp.Country {
			continue
		}
		minD := 1e18
		for _, h := range isp.Hubs {
			if d := geo.DistanceKm(m.Point, bb.Site(h).Metro.Point).Float(); d < minD {
				minD = d
			}
		}
		if minD > best {
			best, clientPt = minD, m.Point
		}
	}
	_ = hubPt
	if best < 500 {
		t.Skipf("country %s too small to demonstrate remote peering (max hub distance %.0f km)", isp.Country, best)
	}
	d := tr.Diagnose(bgp.Client{PrefixID: 3, Point: clientPt, ISP: ispID}, 0)
	if d.ExcessKm < 100 {
		t.Skipf("client happened to be near a hub front-end (excess %.0f km)", d.ExcessKm)
	}
	if !strings.Contains(d.Category, "remote peering") && !strings.Contains(d.Category, "intradomain") {
		t.Fatalf("diagnosis %q does not flag a pathology", d.Category)
	}
}

func TestDiagnoseIntradomainDetour(t *testing.T) {
	tr, bb, _ := tracer(t)
	// A client right next to the Denver peering-only site: its anycast
	// traffic enters at Denver and must ride the backbone to a front-end.
	var denver topology.SiteID = topology.InvalidSite
	for _, s := range bb.Sites {
		if s.Metro.Name == "denver" {
			denver = s.ID
		}
	}
	if denver == topology.InvalidSite {
		t.Fatal("denver missing from default deployment")
	}
	trace := Trace{}
	_ = trace
	at := tr.TraceAnycast(bgp.Client{PrefixID: 0, Point: bb.Site(denver).Metro.Point, ISP: 0}, 0)
	// If the trace entered at denver, it must contain a backbone leg.
	if at.Hops[1].Name == "denver" && len(at.Hops) < 3 {
		t.Fatalf("ingress at peering-only denver must ride the backbone: %+v", at.Hops)
	}
}

func TestRenderFormats(t *testing.T) {
	tr, _, isps := tracer(t)
	boston, _ := geo.FindMetro("boston")
	c := bgp.Client{PrefixID: 1, Point: boston.Point, ISP: hotPotatoISP(t, isps, "US")}
	out := tr.TraceAnycast(c, 0).Render()
	for _, want := range []string{"traceroute (anycast)", "client", "front-end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if HopClient.String() != "client" || HopKind(42).String() == "" {
		t.Fatal("hop kind names")
	}
}
