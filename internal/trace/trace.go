// Package trace reconstructs hop-by-hop paths through the simulated
// topology, standing in for the RIPE Atlas traceroutes the paper used to
// diagnose poor anycast routes (§5). A trace shows the client's Internet
// leg to its ingress peering point and the CDN-internal backbone hops to
// the serving front-end, with cumulative distance and estimated RTT at
// each hop — enough to demonstrate both §5 pathologies programmatically.
package trace

import (
	"fmt"
	"strings"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Hop is one step of a reconstructed path.
type Hop struct {
	// Name is the hop's location ("client", a site metro name).
	Name string
	// Kind describes the hop's role.
	Kind HopKind
	// CumulativeKm is the path distance walked so far.
	CumulativeKm units.Kilometers
	// EstRTTms is the estimated round-trip time to this hop.
	EstRTTms units.Millis
}

// HopKind classifies hops.
type HopKind int

// Hop kinds.
const (
	HopClient HopKind = iota
	HopIngress
	HopBackbone
	HopFrontEnd
)

func (k HopKind) String() string {
	switch k {
	case HopClient:
		return "client"
	case HopIngress:
		return "ingress"
	case HopBackbone:
		return "backbone"
	case HopFrontEnd:
		return "front-end"
	default:
		return fmt.Sprintf("HopKind(%d)", int(k))
	}
}

// Trace is a reconstructed path.
type Trace struct {
	Hops []Hop
	// Anycast reports whether the trace followed the anycast route (true)
	// or a direct unicast route (false).
	Anycast bool
}

// TotalKm returns the full path distance.
func (t Trace) TotalKm() units.Kilometers {
	if len(t.Hops) == 0 {
		return 0
	}
	return t.Hops[len(t.Hops)-1].CumulativeKm
}

// Render formats the trace like a traceroute.
func (t Trace) Render() string {
	var b strings.Builder
	kind := "anycast"
	if !t.Anycast {
		kind = "unicast"
	}
	fmt.Fprintf(&b, "traceroute (%s), %d hops:\n", kind, len(t.Hops))
	for i, h := range t.Hops {
		fmt.Fprintf(&b, "%3d  %-18s %-10s %8.0f km  %6.1f ms\n",
			i+1, h.Name, h.Kind, h.CumulativeKm, h.EstRTTms)
	}
	return b.String()
}

// Tracer reconstructs paths using the router's routing decisions and the
// latency model's estimates.
type Tracer struct {
	Router  *bgp.Router
	Latency *latency.Model
}

// TraceAnycast reconstructs the anycast path of a client on a given day.
func (tr *Tracer) TraceAnycast(c bgp.Client, day int) Trace {
	sched := tr.Router.IngressSchedule(c, day+1)
	assign := tr.Router.Assign(c, sched[day])
	bb := tr.Router.Backbone()
	t := Trace{Anycast: true}
	t.Hops = append(t.Hops, Hop{Name: "client", Kind: HopClient})
	// Internet leg to ingress.
	cum := assign.AirKm
	p := latency.Path{PrefixID: c.PrefixID, EntryKey: uint64(assign.Ingress), AirKm: assign.AirKm}
	rttIngress := tr.Latency.BaseRTTms(p)
	t.Hops = append(t.Hops, Hop{
		Name:         bb.Site(assign.Ingress).Metro.Name,
		Kind:         HopIngress,
		CumulativeKm: cum,
		EstRTTms:     rttIngress,
	})
	// Backbone hops from ingress to front-end.
	path := bb.Path(assign.Ingress, assign.FrontEnd)
	cfg := tr.Latency.Config()
	for i := 1; i < len(path); i++ {
		prev := bb.Site(path[i-1]).Metro.Point
		cur := bb.Site(path[i]).Metro.Point
		legKm := geo.DistanceKm(prev, cur)
		cum += legKm
		rttIngress += units.Millis(2 * legKm.Float() * cfg.BackboneInflation / cfg.FiberKmPerMs)
		kind := HopBackbone
		if i == len(path)-1 {
			kind = HopFrontEnd
		}
		t.Hops = append(t.Hops, Hop{
			Name:         bb.Site(path[i]).Metro.Name,
			Kind:         kind,
			CumulativeKm: cum,
			EstRTTms:     rttIngress,
		})
	}
	if len(path) == 1 {
		// Ingress is the front-end: re-tag the last hop.
		t.Hops[len(t.Hops)-1].Kind = HopFrontEnd
	}
	return t
}

// TraceUnicast reconstructs the direct unicast path to a front-end.
func (tr *Tracer) TraceUnicast(c bgp.Client, fe topology.SiteID) Trace {
	assign := tr.Router.UnicastAssignment(c, fe)
	bb := tr.Router.Backbone()
	p := latency.Path{
		PrefixID: c.PrefixID,
		EntryKey: uint64(fe),
		AirKm:    assign.AirKm,
		Unicast:  true,
	}
	return Trace{
		Anycast: false,
		Hops: []Hop{
			{Name: "client", Kind: HopClient},
			{
				Name:         bb.Site(fe).Metro.Name,
				Kind:         HopFrontEnd,
				CumulativeKm: assign.AirKm,
				EstRTTms:     tr.Latency.BaseRTTms(p),
			},
		},
	}
}

// Diagnosis compares the anycast path against the best unicast alternative
// and classifies the pathology, mirroring the two case-study categories of
// §5.
type Diagnosis struct {
	AnycastTrace Trace
	BestUnicast  Trace
	// ExcessKm is how much farther the anycast path travels.
	ExcessKm units.Kilometers
	// Category classifies the problem.
	Category string
}

// Diagnose traces the client's anycast route and its route to the
// geographically closest front-end, and explains the difference.
func (tr *Tracer) Diagnose(c bgp.Client, day int) Diagnosis {
	bb := tr.Router.Backbone()
	at := tr.TraceAnycast(c, day)
	// Closest front-end by air.
	var closest topology.SiteID = topology.InvalidSite
	best := units.Kilometers(-1)
	for _, fe := range bb.FrontEnds() {
		d := geo.DistanceKm(c.Point, bb.Site(fe).Metro.Point)
		if closest == topology.InvalidSite || d < best {
			closest, best = fe, d
		}
	}
	ut := tr.TraceUnicast(c, closest)
	d := Diagnosis{
		AnycastTrace: at,
		BestUnicast:  ut,
		ExcessKm:     at.TotalKm() - ut.TotalKm(),
	}
	switch {
	case d.ExcessKm < 100:
		d.Category = "anycast near-optimal"
	case len(at.Hops) > 2:
		d.Category = "intradomain detour: ingress lacks a colocated front-end (paper's router A/B example)"
	default:
		d.Category = "remote peering: ISP egress policy hands off far from the client (paper's Denver→Phoenix, Moscow→Stockholm examples)"
	}
	return d
}
