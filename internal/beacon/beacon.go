// Package beacon implements the paper's client-side measurement system
// (§3.2.2): a JavaScript beacon injected into a fraction of search result
// pages that, after the page loads, fetches four test URLs — one resolved
// to the anycast VIP and three to unicast front-ends chosen by the
// authoritative DNS (§3.3) — and reports the download latencies together
// with a globally unique query ID that lets the backend join client-side
// HTTP results with server-side DNS logs.
//
// Modeled beacon details:
//   - a warm-up request removes DNS lookup latency from the measurement
//     (so samples reflect only the client↔front-end path);
//   - browsers supporting the W3C Resource Timing API report accurate
//     timings; others report positively biased primitive timings
//     (latency.Model.MeasuredRTTms).
package beacon

import (
	"math"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// TargetSample is the measured latency to one front-end.
type TargetSample struct {
	Site  topology.SiteID
	RTTms units.Millis
}

// Measurement is one beacon execution: the anycast sample plus three
// unicast samples, joined with the DNS-side record by QueryID.
type Measurement struct {
	QueryID  uint64
	ClientID uint64
	Day      int
	Region   geo.Region
	LDNS     dns.LDNSID
	// Anycast is measurement (a) of §3.3.
	Anycast TargetSample
	// Unicast are measurements (b)-(d): the front-end closest to the
	// LDNS, then two weighted-random candidates.
	Unicast [3]TargetSample
}

// BestUnicast returns the lowest-latency unicast sample.
func (m Measurement) BestUnicast() TargetSample {
	best := m.Unicast[0]
	for _, u := range m.Unicast[1:] {
		if u.RTTms < best.RTTms {
			best = u
		}
	}
	return best
}

// AnycastPenaltyMs returns how much slower anycast was than the best
// unicast sample (negative when anycast won), the quantity of Figure 3.
func (m Measurement) AnycastPenaltyMs() units.Millis {
	return m.Anycast.RTTms - m.BestUnicast().RTTms
}

// labelBeacon seeds the per-execution DNS target-selection stream; hashed
// once so the per-beacon derivation is allocation-free.
var labelBeacon = xrand.NewLabel("beacon")

// Executor runs beacons against the simulated world.
type Executor struct {
	Router    *bgp.Router
	Authority *dns.Authority
	Latency   *latency.Model
	Mapping   *dns.Mapping
	Seed      uint64
	// Faults optionally injects scenario events into executions: an
	// ldns-outage swaps the client's resolver for its public fallback,
	// and an inflate adds latency to every sample of the region. A nil
	// injector (the fault-free case) changes nothing.
	Faults *faults.Injector
}

// Run executes one beacon for the given client on the given day using the
// precomputed anycast assignment for that day. queryID must be globally
// unique; it seeds the randomized DNS target selection and sample noise.
//
//perf:hotpath
func (e *Executor) Run(c clients.Client, day int, assign bgp.Assignment, queryID uint64) Measurement {
	ldns := e.Faults.Resolver(e.Mapping.Resolver(c.ID), day)
	// One stack-allocated stream serves the whole execution: first as the
	// DNS target-selection stream, then (reseeded per sample) as scratch
	// for all four latency samples.
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL1(e.Seed, labelBeacon, queryID))
	targets := e.Authority.SelectBeaconTargets(ldns, &rs)

	m := Measurement{
		QueryID:  queryID,
		ClientID: c.ID,
		Day:      day,
		Region:   c.Region,
		LDNS:     ldns.ID,
	}
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	extra := e.Faults.InflationMs(c.Region, day)

	m.Anycast = e.sample(&rs, rc, day, assign, queryID, 0, extra)
	sites := [3]topology.SiteID{targets.Closest, targets.Random[0], targets.Random[1]}
	for i, site := range sites {
		ua := e.Router.UnicastAssignment(rc, site)
		m.Unicast[i] = e.sample(&rs, rc, day, ua, queryID, uint64(i+1), extra)
	}
	return m
}

// MeasureCandidates measures the client against every candidate front-end
// of its LDNS plus anycast. The paper could not afford this per beacon
// ("measuring from each client to every front-end would introduce too much
// overhead") but uses the near-equivalent union over time for Figure 1's
// diminishing-returns analysis; the simulator can do it directly.
func (e *Executor) MeasureCandidates(c clients.Client, day int, assign bgp.Assignment, queryID uint64) (Measurement, []TargetSample) {
	ldns := e.Faults.Resolver(e.Mapping.Resolver(c.ID), day)
	m := Measurement{
		QueryID:  queryID,
		ClientID: c.ID,
		Day:      day,
		Region:   c.Region,
		LDNS:     ldns.ID,
	}
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	extra := e.Faults.InflationMs(c.Region, day)
	var rs xrand.Stream
	m.Anycast = e.sample(&rs, rc, day, assign, queryID, 0, extra)
	cands := e.Authority.Candidates(ldns)
	out := make([]TargetSample, len(cands))
	for i, site := range cands {
		ua := e.Router.UnicastAssignment(rc, site)
		out[i] = e.sample(&rs, rc, day, ua, queryID, uint64(i+1), extra)
	}
	return m, out
}

// sample produces one measured RTT over a path. extraMs is regional fault
// inflation added to the true RTT before browser-timing distortion, since
// real congestion delays the path, not the clock. rs is stream scratch,
// reseeded before each draw, shared across a measurement's targets.
//
//perf:hotpath
func (e *Executor) sample(rs *xrand.Stream, rc bgp.Client, day int, a bgp.Assignment, queryID, slot uint64, extraMs units.Millis) TargetSample {
	// Each beacon execution runs in one household of the /24; all four
	// samples of the execution share it.
	const householdsPerPrefix = 6
	p := latency.Path{
		PrefixID:   rc.PrefixID,
		EntryKey:   uint64(a.Ingress),
		AirKm:      a.AirKm,
		BackboneKm: a.BackboneKm,
		Household:  queryID % householdsPerPrefix,
		Unicast:    a.Unicast,
	}
	sampleKey := queryID*8 + slot
	trueRTT := e.Latency.SampleRTTmsInto(rs, p, day, sampleKey) + extraMs
	// Browser timing fidelity is a property of the client, keyed by the
	// client prefix (households keep their browser for the study window).
	measured := e.Latency.MeasuredRTTmsInto(rs, trueRTT, rc.PrefixID, sampleKey)
	// Browser timings are reported at millisecond granularity; the
	// analysis in §5-6 sees integer-ms latencies.
	return TargetSample{
		Site:  a.FrontEnd,
		RTTms: units.Millis(math.Round(measured.Float())),
	}
}
