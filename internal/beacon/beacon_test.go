package beacon

import (
	"testing"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/topology"
)

type fixture struct {
	exec *Executor
	pop  *clients.Population
}

func setup(t *testing.T) fixture {
	t.Helper()
	dep, err := cdn.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	metros := geo.World()
	isps := topology.BuildISPs(dep.Backbone, metros, topology.DefaultISPModelConfig(1))
	pop, err := clients.Generate(metros, isps, clients.DefaultConfig(2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := dns.BuildMapping(pop, isps, metros, dns.DefaultMapperConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	router := bgp.NewRouter(dep.Backbone, isps, 4, bgp.DefaultConfig())
	exec := &Executor{
		Router:    router,
		Authority: dns.NewAuthority(dep, geo.PerfectDB(), 10),
		Latency:   latency.NewModel(5, latency.DefaultConfig()),
		Mapping:   mp,
		Seed:      6,
	}
	return fixture{exec: exec, pop: pop}
}

func TestRunProducesFourSamples(t *testing.T) {
	f := setup(t)
	c := f.pop.Clients[0]
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	assign := f.exec.Router.Assign(rc, f.exec.Router.BaseIngress(rc))
	m := f.exec.Run(c, 0, assign, 123)
	if m.QueryID != 123 || m.ClientID != c.ID || m.Day != 0 {
		t.Fatalf("bad measurement metadata %+v", m)
	}
	if m.Anycast.RTTms <= 0 {
		t.Fatal("anycast sample non-positive")
	}
	if m.Anycast.Site != assign.FrontEnd {
		t.Fatal("anycast sample reported wrong front-end")
	}
	for i, u := range m.Unicast {
		if u.RTTms <= 0 {
			t.Fatalf("unicast sample %d non-positive", i)
		}
		if !f.exec.Router.Backbone().Site(u.Site).FrontEnd {
			t.Fatalf("unicast target %d is not a front-end", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	f := setup(t)
	c := f.pop.Clients[1]
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	assign := f.exec.Router.Assign(rc, f.exec.Router.BaseIngress(rc))
	a := f.exec.Run(c, 2, assign, 55)
	b := f.exec.Run(c, 2, assign, 55)
	if a != b {
		t.Fatal("identical beacon executions differ")
	}
	// Different query IDs should draw different noise in at least one of
	// the four samples (individual samples can collide after rounding).
	different := false
	for q := uint64(56); q < 66 && !different; q++ {
		c2 := f.exec.Run(c, 2, assign, q)
		if a.Anycast.RTTms != c2.Anycast.RTTms {
			different = true
		}
		for i := range c2.Unicast {
			if c2.Unicast[i] != a.Unicast[i] {
				different = true
			}
		}
	}
	if !different {
		t.Fatal("different query IDs should draw different noise")
	}
}

func TestBestUnicastAndPenalty(t *testing.T) {
	m := Measurement{
		Anycast: TargetSample{Site: 9, RTTms: 50},
		Unicast: [3]TargetSample{{Site: 1, RTTms: 60}, {Site: 2, RTTms: 40}, {Site: 3, RTTms: 70}},
	}
	if got := m.BestUnicast(); got.Site != 2 {
		t.Fatalf("BestUnicast = %+v", got)
	}
	if got := m.AnycastPenaltyMs(); got != 10 {
		t.Fatalf("penalty = %v, want 10", got)
	}
	m.Anycast.RTTms = 30
	if got := m.AnycastPenaltyMs(); got != -10 {
		t.Fatalf("penalty = %v, want -10 (anycast wins)", got)
	}
}

func TestAnycastUsuallyCompetitive(t *testing.T) {
	f := setup(t)
	good := 0
	total := 0
	for _, c := range f.pop.Clients[:500] {
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		assign := f.exec.Router.Assign(rc, f.exec.Router.BaseIngress(rc))
		m := f.exec.Run(c, 0, assign, c.ID)
		total++
		if m.AnycastPenaltyMs() < 25 {
			good++
		}
	}
	frac := float64(good) / float64(total)
	// The paper's headline: anycast within 25ms of best unicast for ~80%
	// of requests. The simulator should be in that ballpark (loose bounds;
	// the precise calibration is checked in the experiments package).
	if frac < 0.6 {
		t.Fatalf("anycast within 25ms for only %.2f of requests", frac)
	}
}

func TestMeasureCandidates(t *testing.T) {
	f := setup(t)
	c := f.pop.Clients[2]
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	assign := f.exec.Router.Assign(rc, f.exec.Router.BaseIngress(rc))
	m, samples := f.exec.MeasureCandidates(c, 1, assign, 99)
	if len(samples) != 10 {
		t.Fatalf("got %d candidate samples, want 10", len(samples))
	}
	if m.Anycast.RTTms <= 0 {
		t.Fatal("anycast sample missing")
	}
	seen := map[topology.SiteID]bool{}
	for _, s := range samples {
		if s.RTTms <= 0 {
			t.Fatal("candidate sample non-positive")
		}
		if seen[s.Site] {
			t.Fatal("duplicate candidate site")
		}
		seen[s.Site] = true
	}
}

func TestNearerCandidatesFasterOnAverage(t *testing.T) {
	f := setup(t)
	var first, last float64
	n := 0
	for _, c := range f.pop.Clients[:300] {
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		assign := f.exec.Router.Assign(rc, f.exec.Router.BaseIngress(rc))
		_, samples := f.exec.MeasureCandidates(c, 0, assign, 1000+c.ID)
		first += samples[0].RTTms.Float()
		last += samples[len(samples)-1].RTTms.Float()
		n++
	}
	if first/float64(n) >= last/float64(n) {
		t.Fatalf("closest candidate mean RTT %.1f should beat farthest %.1f",
			first/float64(n), last/float64(n))
	}
}

func BenchmarkBeaconRun(b *testing.B) {
	dep, err := cdn.BuildDefault()
	if err != nil {
		b.Fatal(err)
	}
	metros := geo.World()
	isps := topology.BuildISPs(dep.Backbone, metros, topology.DefaultISPModelConfig(1))
	pop, err := clients.Generate(metros, isps, clients.DefaultConfig(2, 100))
	if err != nil {
		b.Fatal(err)
	}
	mp, err := dns.BuildMapping(pop, isps, metros, dns.DefaultMapperConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	router := bgp.NewRouter(dep.Backbone, isps, 4, bgp.DefaultConfig())
	exec := &Executor{
		Router:    router,
		Authority: dns.NewAuthority(dep, geo.PerfectDB(), 10),
		Latency:   latency.NewModel(5, latency.DefaultConfig()),
		Mapping:   mp,
		Seed:      6,
	}
	c := pop.Clients[0]
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	assign := router.Assign(rc, router.BaseIngress(rc))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = exec.Run(c, i%30, assign, uint64(i))
	}
}
