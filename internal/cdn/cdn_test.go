package cdn

import (
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/topology"
)

func TestBuildDefault(t *testing.T) {
	d, err := BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	if n := d.NumFrontEnds(); n != 64 {
		t.Fatalf("default deployment has %d front-ends, want 64", n)
	}
	if got := d.Backbone.NumSites(); got <= d.NumFrontEnds() {
		t.Fatalf("expected peering-only sites beyond the %d front-ends, got %d sites",
			d.NumFrontEnds(), got)
	}
}

func TestDeploymentRegionalDensity(t *testing.T) {
	d, err := BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	regions := map[geo.Region]int{}
	for _, fe := range d.FrontEnds {
		regions[d.Backbone.Site(fe.Site).Metro.Region]++
	}
	if regions[geo.RegionNorthAmerica] < 15 || regions[geo.RegionEurope] < 15 {
		t.Fatalf("NA/EU should be dense: %v", regions)
	}
	for _, r := range []geo.Region{geo.RegionAsia, geo.RegionSouthAmerica, geo.RegionOceania, geo.RegionAfrica} {
		if regions[r] == 0 {
			t.Fatalf("region %s has no front-ends", r)
		}
		if regions[r] >= regions[geo.RegionNorthAmerica] {
			t.Fatalf("region %s should be sparser than North America: %v", r, regions)
		}
	}
}

func TestUnicastPrefixesUnique(t *testing.T) {
	d, err := BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netaddr.Prefix24]bool{}
	for _, fe := range d.FrontEnds {
		if seen[fe.Unicast] {
			t.Fatalf("duplicate unicast prefix %v", fe.Unicast)
		}
		seen[fe.Unicast] = true
		if fe.Unicast == d.AnycastVIP {
			t.Fatal("unicast prefix collides with anycast VIP")
		}
	}
}

func TestFrontEndLookups(t *testing.T) {
	d, err := BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	for _, fe := range d.FrontEnds {
		got, ok := d.FrontEndAt(fe.Site)
		if !ok || got.Unicast != fe.Unicast {
			t.Fatalf("FrontEndAt(%d) = %+v, %v", fe.Site, got, ok)
		}
		got, ok = d.ByUnicast(fe.Unicast)
		if !ok || got.Site != fe.Site {
			t.Fatalf("ByUnicast(%v) = %+v, %v", fe.Unicast, got, ok)
		}
	}
	// Peering-only sites have no front-end.
	for _, s := range d.Backbone.Sites {
		if !s.FrontEnd {
			if _, ok := d.FrontEndAt(s.ID); ok {
				t.Fatalf("peering-only site %s reported a front-end", s.Metro.Name)
			}
		}
	}
	if _, ok := d.ByUnicast(netaddr.FromOctets(1, 2, 3)); ok {
		t.Fatal("ByUnicast found an unallocated prefix")
	}
}

func TestNewDeploymentOnCustomBackbone(t *testing.T) {
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "paris", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFrontEnds() != 2 {
		t.Fatalf("front-ends = %d, want 2", d.NumFrontEnds())
	}
	if d.FrontEnds[0].Name != "london" {
		t.Fatalf("front-end name = %q", d.FrontEnds[0].Name)
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 22 {
		t.Fatalf("catalog has %d entries, want 22 (21 public + the measured CDN)", len(cat))
	}
	names := map[string]bool{}
	outliers, anycastCount := 0, 0
	for _, c := range cat {
		if names[c.Name] {
			t.Fatalf("duplicate CDN %q", c.Name)
		}
		names[c.Name] = true
		if c.Locations <= 0 {
			t.Fatalf("CDN %q has non-positive location count", c.Name)
		}
		if c.Outlier {
			outliers++
		}
		if c.Anycast {
			anycastCount++
		}
	}
	if outliers != 4 {
		t.Fatalf("catalog marks %d outliers, want 4 (§4)", outliers)
	}
	if anycastCount < 4 {
		t.Fatalf("catalog marks %d anycast CDNs, want >= 4", anycastCount)
	}
	// The paper's non-outlier range: 17 (CDNify) to 161 (CDNetworks).
	for _, c := range cat {
		if !c.Outlier && (c.Locations < 17 || c.Locations > 161) {
			t.Errorf("non-outlier %s has %d locations, outside the paper's 17-161 range", c.Name, c.Locations)
		}
	}
}

func BenchmarkBuildDefault(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDefault(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSiteSpecsForPresets(t *testing.T) {
	def, err := SiteSpecsFor(PresetDefault)
	if err != nil {
		t.Fatal(err)
	}
	med, err := SiteSpecsFor(PresetMedium)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := SiteSpecsFor(PresetSparse)
	if err != nil {
		t.Fatal(err)
	}
	count := func(specs []topology.SiteSpec) (fe, peer int) {
		for _, s := range specs {
			if s.FrontEnd {
				fe++
			}
			if s.Peering {
				peer++
			}
		}
		return
	}
	feD, peerD := count(def)
	feM, _ := count(med)
	feS, _ := count(sparse)
	if !(feD > feM && feM > feS) {
		t.Fatalf("front-end counts not decreasing: %d, %d, %d", feD, feM, feS)
	}
	if feS < 6 {
		t.Fatalf("sparse preset too sparse: %d front-ends", feS)
	}
	// Demoted sites keep their peering; total peering never shrinks.
	_, peerM := count(med)
	if peerM != peerD {
		t.Fatalf("peering count changed: %d -> %d", peerD, peerM)
	}
	// Every region keeps at least one front-end.
	for _, specs := range [][]topology.SiteSpec{med, sparse} {
		regions := map[geo.Region]bool{}
		for _, sp := range specs {
			if !sp.FrontEnd {
				continue
			}
			m, _ := geo.FindMetro(sp.Metro)
			regions[m.Region] = true
		}
		for _, r := range []geo.Region{geo.RegionNorthAmerica, geo.RegionEurope, geo.RegionAsia,
			geo.RegionSouthAmerica, geo.RegionOceania, geo.RegionAfrica} {
			if !regions[r] {
				t.Fatalf("region %s lost all front-ends", r)
			}
		}
	}
	if _, err := SiteSpecsFor("bogus"); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestBuildPreset(t *testing.T) {
	for _, p := range []Preset{PresetDefault, PresetMedium, PresetSparse} {
		d, err := BuildPreset(p)
		if err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		if d.NumFrontEnds() == 0 {
			t.Fatalf("preset %s has no front-ends", p)
		}
	}
}
