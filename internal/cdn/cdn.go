// Package cdn defines the simulated CDN deployment: which metros host
// front-ends, which are peering-only, the anycast and unicast addressing of
// §3.1 of the paper, and the public deployment catalog used by the §4
// size comparison.
package cdn

import (
	"fmt"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/topology"
)

// FrontEnd is one front-end location with its addressing.
type FrontEnd struct {
	Site topology.SiteID
	Name string
	// Unicast is the /24 announced only at this front-end's closest
	// peering point (§3.1), used by the beacon's test URLs.
	Unicast netaddr.Prefix24
}

// Deployment couples a backbone with front-end addressing.
type Deployment struct {
	Backbone   *topology.Backbone
	FrontEnds  []FrontEnd
	AnycastVIP netaddr.Prefix24

	bySite map[topology.SiteID]int
}

// NewDeployment assigns unicast prefixes to every front-end site of the
// backbone.
func NewDeployment(b *topology.Backbone) (*Deployment, error) {
	d := &Deployment{
		Backbone:   b,
		AnycastVIP: netaddr.AnycastPrefix,
		bySite:     map[topology.SiteID]int{},
	}
	alloc := netaddr.NewAllocator(netaddr.FrontEndPool)
	for _, id := range b.FrontEnds() {
		p, ok := alloc.Next()
		if !ok {
			return nil, fmt.Errorf("cdn: front-end address pool exhausted at site %d", id)
		}
		fe := FrontEnd{
			Site:    id,
			Name:    b.Site(id).Metro.Name,
			Unicast: p,
		}
		d.bySite[id] = len(d.FrontEnds)
		d.FrontEnds = append(d.FrontEnds, fe)
	}
	return d, nil
}

// FrontEndAt returns the front-end hosted at the given site.
func (d *Deployment) FrontEndAt(site topology.SiteID) (FrontEnd, bool) {
	i, ok := d.bySite[site]
	if !ok {
		return FrontEnd{}, false
	}
	return d.FrontEnds[i], true
}

// ByUnicast returns the front-end owning a unicast prefix.
func (d *Deployment) ByUnicast(p netaddr.Prefix24) (FrontEnd, bool) {
	for _, fe := range d.FrontEnds {
		if fe.Unicast == p {
			return fe, true
		}
	}
	return FrontEnd{}, false
}

// NumFrontEnds returns the number of front-end locations.
func (d *Deployment) NumFrontEnds() int { return len(d.FrontEnds) }

// DefaultSiteSpecs returns the simulated deployment used by the
// experiments: 64 front-end metros, dense in North America and Europe and
// sparser elsewhere — the scale the paper describes as "a few dozen
// locations, most similar to Level3 and MaxCDN" — plus a handful of
// peering-only interconnection sites that create the intradomain detour
// pathology of §5.
func DefaultSiteSpecs() []topology.SiteSpec {
	fe := func(m string) topology.SiteSpec { return topology.SiteSpec{Metro: m, FrontEnd: true, Peering: true} }
	peer := func(m string) topology.SiteSpec { return topology.SiteSpec{Metro: m, FrontEnd: false, Peering: true} }
	return []topology.SiteSpec{
		// North America (22 FE + 3 peering-only).
		fe("new-york"), fe("washington"), fe("boston"), fe("atlanta"),
		fe("miami"), fe("chicago"), fe("dallas"), fe("houston"),
		fe("st-louis"), fe("minneapolis"), fe("phoenix"), fe("los-angeles"),
		fe("san-francisco"), fe("seattle"), fe("portland"), fe("las-vegas"),
		fe("detroit"), fe("philadelphia"), fe("charlotte"), fe("toronto"),
		fe("montreal"), fe("mexico-city"),
		peer("denver"), peer("kansas-city"), peer("salt-lake-city"),

		// Europe (20 FE + 2 peering-only).
		fe("london"), fe("paris"), fe("frankfurt"), fe("amsterdam"),
		fe("madrid"), fe("milan"), fe("stockholm"), fe("copenhagen"),
		fe("warsaw"), fe("vienna"), fe("dublin"), fe("zurich"),
		fe("prague"), fe("budapest"), fe("bucharest"), fe("athens"),
		fe("helsinki"), fe("lisbon"), fe("manchester"), fe("istanbul"),
		peer("brussels"), peer("marseille"),

		// Asia & Middle East (12 FE + 1 peering-only).
		fe("tokyo"), fe("osaka"), fe("seoul"), fe("hong-kong"),
		fe("singapore"), fe("taipei"), fe("mumbai"), fe("chennai"),
		fe("delhi"), fe("kuala-lumpur"), fe("dubai"), fe("tel-aviv"),
		peer("bangkok"),

		// South America (4 FE).
		fe("sao-paulo"), fe("rio-de-janeiro"), fe("buenos-aires"), fe("bogota"),

		// Oceania (3 FE).
		fe("sydney"), fe("melbourne"), fe("auckland"),

		// Africa (3 FE).
		fe("johannesburg"), fe("cape-town"), fe("cairo"),
	}
}

// BuildDefault constructs the default backbone and deployment.
func BuildDefault() (*Deployment, error) {
	b, err := topology.Build(DefaultSiteSpecs(), 3)
	if err != nil {
		return nil, err
	}
	return NewDeployment(b)
}

// Preset names a deployment density. §4 of the paper leaves "how to
// extend these performance results to CDNs with different numbers and
// locations of servers" as future work; the presets make that an
// experiment.
type Preset string

// Deployment presets.
const (
	// PresetDefault is the 64-site deployment (Bing-like scale).
	PresetDefault Preset = "default"
	// PresetMedium keeps roughly every other front-end (~CloudFlare/
	// EdgeCast scale).
	PresetMedium Preset = "medium"
	// PresetSparse keeps roughly every fourth front-end (~CDNify scale).
	PresetSparse Preset = "sparse"
)

// SiteSpecsFor returns the site list of a preset. Sparser presets retain
// every front-end metro whose index is divisible by the stride, always
// keeping the first site of each region so no region goes dark; peering-
// only sites are kept (interconnection does not disappear when servers
// do — which is exactly what makes sparse anycast interesting).
func SiteSpecsFor(p Preset) ([]topology.SiteSpec, error) {
	specs := DefaultSiteSpecs()
	var stride int
	switch p {
	case PresetDefault, "":
		return specs, nil
	case PresetMedium:
		stride = 2
	case PresetSparse:
		stride = 4
	default:
		return nil, fmt.Errorf("cdn: unknown deployment preset %q", p)
	}
	seenRegion := map[string]bool{}
	out := make([]topology.SiteSpec, 0, len(specs))
	feIdx := 0
	for _, sp := range specs {
		if !sp.FrontEnd {
			out = append(out, sp)
			continue
		}
		m, ok := geo.FindMetro(sp.Metro)
		if !ok {
			return nil, fmt.Errorf("cdn: unknown metro %q", sp.Metro)
		}
		region := string(m.Region)
		keep := feIdx%stride == 0 || !seenRegion[region]
		feIdx++
		if !keep {
			// Demote to peering-only: the interconnect remains.
			sp.FrontEnd = false
			out = append(out, sp)
			continue
		}
		seenRegion[region] = true
		out = append(out, sp)
	}
	return out, nil
}

// BuildPreset constructs a deployment for a preset.
func BuildPreset(p Preset) (*Deployment, error) {
	specs, err := SiteSpecsFor(p)
	if err != nil {
		return nil, err
	}
	b, err := topology.Build(specs, 3)
	if err != nil {
		return nil, err
	}
	return NewDeployment(b)
}
