package cdn

// PublicCDN is one row of the public CDN deployment data the paper's §4
// compares against (from the USC CDN coverage dataset the paper cites).
type PublicCDN struct {
	Name      string
	Locations int
	Anycast   bool
	// Outlier marks the four extreme deployments §4 sets aside
	// (the Chinese CDNs' domestic footprints and the 1000+ location
	// deployments of Google and Akamai).
	Outlier bool
	Note    string
}

// Catalog returns the 21-CDN comparison set of §4, plus this paper's CDN
// ("bing") for context. Location counts are the public figures the paper
// quotes; for CDNs the paper names without counts, counts are
// representative mid-2015 values from the same public dataset.
func Catalog() []PublicCDN {
	return []PublicCDN{
		{Name: "google", Locations: 1000, Outlier: true, Note: "1000+ locations (Calder et al. 2013)"},
		{Name: "akamai", Locations: 1000, Outlier: true, Note: "1000+ locations"},
		{Name: "chinanetcenter", Locations: 100, Outlier: true, Note: "100+ locations in China"},
		{Name: "chinacache", Locations: 100, Outlier: true, Note: "100+ locations in China"},
		{Name: "cdnetworks", Locations: 161, Note: "largest non-outlier"},
		{Name: "skyparkcdn", Locations: 119},
		{Name: "level3", Locations: 62, Note: "scale most similar to the measured CDN"},
		{Name: "maxcdn", Locations: 57, Note: "scale most similar to the measured CDN"},
		{Name: "limelight", Locations: 52},
		{Name: "cachefly", Locations: 41, Anycast: true},
		{Name: "cloudflare", Locations: 43, Anycast: true},
		{Name: "highwinds", Locations: 35},
		{Name: "cloudfront", Locations: 37, Note: "Amazon CloudFront"},
		{Name: "edgecast", Locations: 31, Anycast: true},
		{Name: "fastly", Locations: 30},
		{Name: "keycdn", Locations: 25},
		{Name: "internap", Locations: 24},
		{Name: "cdn77", Locations: 22},
		{Name: "cdnsun", Locations: 20},
		{Name: "onapp", Locations: 19},
		{Name: "cdnify", Locations: 17, Note: "smallest non-outlier"},
		{Name: "bing", Locations: 64, Anycast: true, Note: "the measured CDN (this reproduction's default deployment)"},
	}
}
