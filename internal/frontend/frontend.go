// Package frontend implements the CDN data path the paper's introduction
// describes: "a CDN architecture which directs the client to a nearby
// front-end, which terminates the client's TCP connection and relays
// requests to a backend server in a data center."
//
// The split-TCP benefit this architecture exists for: a client's TCP
// handshake (and its first request) only crosses the short client↔front-
// end path, while the front-end maintains warm, persistent connections to
// the far backend — so a request pays ~2×RTT(near) + 1×RTT(far) instead
// of the 2×RTT(far) a cold direct connection costs. That latency delta is
// exactly why front-end placement (and therefore anycast's choice of
// front-end) matters for latency-sensitive services like search.
//
// Network distance is emulated with latency-injecting dialers and
// connections, so the whole path runs over real loopback sockets.
package frontend

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// delayConn wraps a net.Conn, charging a one-way delay per Write — a
// coarse but honest model: every request or response segment batch pays
// one propagation delay.
type delayConn struct {
	net.Conn
	oneWay time.Duration
}

func (c *delayConn) Write(p []byte) (int, error) {
	if c.oneWay > 0 {
		time.Sleep(c.oneWay)
	}
	return c.Conn.Write(p)
}

// Dialer returns a DialContext function that emulates a path with the
// given round-trip time: dialing costs one RTT (the TCP handshake), and
// each write costs half an RTT (one-way propagation).
func Dialer(rtt time.Duration) func(ctx context.Context, network, addr string) (net.Conn, error) {
	var d net.Dialer
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		if rtt > 0 {
			select {
			case <-time.After(rtt): // SYN, SYN-ACK
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		conn, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return &delayConn{Conn: conn, oneWay: rtt / 2}, nil
	}
}

// Backend is the origin "data center" HTTP server.
type Backend struct {
	srv     *http.Server
	ln      net.Listener
	serving sync.WaitGroup
	// Requests counts requests served.
	Requests atomic.Int64
}

// NewBackend starts an origin server on loopback. The handler answers
// every request with a small response body (search results, in the
// paper's setting).
func NewBackend() (*Backend, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("frontend: backend listen: %w", err)
	}
	b := &Backend{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		b.Requests.Add(1)
		w.Header().Set("X-Served-By", "backend")
		fmt.Fprintf(w, "results for %q\n", r.URL.Query().Get("q"))
	})
	b.srv = &http.Server{Handler: mux}
	b.serving.Add(1)
	go func() {
		defer b.serving.Done()
		// Serve returns ErrServerClosed after Shutdown; nothing to handle.
		_ = b.srv.Serve(ln)
	}()
	return b, nil
}

// Addr returns the backend's address.
func (b *Backend) Addr() string { return b.ln.Addr().String() }

// Close shuts the backend down and waits for the serve goroutine to exit.
func (b *Backend) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := b.srv.Shutdown(ctx)
	b.serving.Wait()
	return err
}

// Proxy is a front-end: it terminates client connections and relays
// requests to the backend over a warm, persistent connection pool.
type Proxy struct {
	srv     *http.Server
	ln      net.Listener
	serving sync.WaitGroup
	// Relayed counts relayed requests.
	Relayed atomic.Int64
}

// NewProxy starts a front-end relaying to backendAddr across a path with
// the given front-end↔backend RTT. The proxy's transport keeps idle
// connections alive, so after warm-up only request/response propagation
// is paid on the long leg.
func NewProxy(backendAddr string, backendRTT time.Duration) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("frontend: proxy listen: %w", err)
	}
	target := &url.URL{Scheme: "http", Host: backendAddr}
	p := &Proxy{ln: ln}
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.Transport = &http.Transport{
		DialContext:         Dialer(backendRTT),
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     time.Minute,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		p.Relayed.Add(1)
		w.Header().Set("X-Served-By", "front-end")
		rp.ServeHTTP(w, r)
	})
	p.srv = &http.Server{Handler: mux}
	p.serving.Add(1)
	go func() {
		defer p.serving.Done()
		// Serve returns ErrServerClosed after Shutdown; nothing to handle.
		_ = p.srv.Serve(ln)
	}()
	return p, nil
}

// Addr returns the proxy's address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Warm establishes the proxy's backend connection ahead of client
// traffic, as a production front-end's connection pool would be.
func (p *Proxy) Warm(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.Addr()+"/?q=warmup", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("frontend: warm-up: %w", err)
	}
	if err := resp.Body.Close(); err != nil {
		return fmt.Errorf("frontend: warm-up close: %w", err)
	}
	return nil
}

// Close shuts the proxy down and waits for the serve goroutine to exit.
func (p *Proxy) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := p.srv.Shutdown(ctx)
	p.serving.Wait()
	return err
}

// FetchResult is one timed client fetch.
type FetchResult struct {
	Elapsed  time.Duration
	ServedBy string
}

// Clock supplies the current time to measurement paths. Injecting one
// (instead of calling time.Now inline) keeps timing observable and
// replayable in tests, the same pattern as dnswire.CachingResolver.Now.
type Clock func() time.Time

// ColdFetch performs one request over a fresh TCP connection across a
// path with the given RTT — what a client pays without a CDN (direct to
// the data center) or on its very first contact with a front-end.
func ColdFetch(ctx context.Context, addr string, rtt time.Duration, query string) (FetchResult, error) {
	return ColdFetchClock(ctx, addr, rtt, query, time.Now)
}

// ColdFetchClock is ColdFetch with an injected clock for deterministic
// timing in tests.
func ColdFetchClock(ctx context.Context, addr string, rtt time.Duration, query string, now Clock) (FetchResult, error) {
	transport := &http.Transport{
		DialContext:       Dialer(rtt),
		DisableKeepAlives: true,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	return timedFetch(ctx, client, addr, query, now)
}

// SessionFetch performs requests over a client that reuses its
// connection (a browser keeping its front-end connection alive).
type SessionFetch struct {
	client *http.Client
	// Now is the measurement clock; defaults to time.Now.
	Now Clock
}

// NewSessionFetch builds a keep-alive client across a path with the given
// RTT.
func NewSessionFetch(rtt time.Duration) *SessionFetch {
	return &SessionFetch{
		client: &http.Client{
			Transport: &http.Transport{
				DialContext:         Dialer(rtt),
				MaxIdleConnsPerHost: 4,
			},
			Timeout: 30 * time.Second,
		},
		Now: time.Now,
	}
}

// Fetch performs one timed request.
func (s *SessionFetch) Fetch(ctx context.Context, addr, query string) (FetchResult, error) {
	now := s.Now
	if now == nil {
		now = time.Now
	}
	return timedFetch(ctx, s.client, addr, query, now)
}

// Close releases idle connections.
func (s *SessionFetch) Close() {
	if t, ok := s.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

func timedFetch(ctx context.Context, client *http.Client, addr, query string, now Clock) (FetchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/?q="+url.QueryEscape(query), nil)
	if err != nil {
		return FetchResult{}, err
	}
	start := now()
	resp, err := client.Do(req)
	if err != nil {
		return FetchResult{}, fmt.Errorf("frontend: fetch: %w", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 512)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	return FetchResult{
		Elapsed:  now().Sub(start),
		ServedBy: resp.Header.Get("X-Served-By"),
	}, nil
}
