package frontend

import (
	"context"
	"testing"
	"time"
)

// Latencies kept small so the suite stays fast; ratios are what matter.
const (
	nearRTT = 4 * time.Millisecond
	farRTT  = 40 * time.Millisecond
)

func setup(t *testing.T) (*Backend, *Proxy) {
	t.Helper()
	b, err := NewBackend()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := b.Close(); err != nil {
			t.Errorf("closing backend: %v", err)
		}
	})
	p, err := NewProxy(b.Addr(), farRTT)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("closing proxy: %v", err)
		}
	})
	return b, p
}

func TestBackendServes(t *testing.T) {
	b, _ := setup(t)
	ctx := context.Background()
	res, err := ColdFetch(ctx, b.Addr(), 0, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "backend" {
		t.Fatalf("served by %q", res.ServedBy)
	}
	if b.Requests.Load() == 0 {
		t.Fatal("backend saw no requests")
	}
}

func TestProxyRelays(t *testing.T) {
	b, p := setup(t)
	ctx := context.Background()
	res, err := ColdFetch(ctx, p.Addr(), 0, "relay")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy != "front-end" {
		t.Fatalf("served by %q, want front-end", res.ServedBy)
	}
	if p.Relayed.Load() == 0 || b.Requests.Load() == 0 {
		t.Fatal("request did not traverse proxy to backend")
	}
}

func TestDialerChargesHandshake(t *testing.T) {
	b, _ := setup(t)
	ctx := context.Background()
	start := time.Now()
	if _, err := ColdFetch(ctx, b.Addr(), farRTT, "x"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Cold fetch: handshake (1 RTT) + request write (0.5 RTT) at minimum.
	if elapsed < farRTT {
		t.Fatalf("cold fetch finished in %v, below one RTT %v", elapsed, farRTT)
	}
}

// TestSplitTCPWins is the architecture's reason to exist: through a warm
// nearby front-end, a cold client fetch beats a cold direct fetch to the
// far backend.
func TestSplitTCPWins(t *testing.T) {
	b, p := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	viaFE, err := ColdFetch(ctx, p.Addr(), nearRTT, "q")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ColdFetch(ctx, b.Addr(), farRTT, "q")
	if err != nil {
		t.Fatal(err)
	}
	if viaFE.Elapsed >= direct.Elapsed {
		t.Fatalf("front-end path %v not faster than direct %v", viaFE.Elapsed, direct.Elapsed)
	}
	// Rough shape: via-FE ≈ 2×near + ~1.5×far write legs; direct ≈ 2×far.
	// Assert at least a 25%% win to stay robust on loaded machines.
	if float64(viaFE.Elapsed) > 0.75*float64(direct.Elapsed) {
		t.Fatalf("front-end win too small: %v vs %v", viaFE.Elapsed, direct.Elapsed)
	}
}

// TestFrontEndChoiceMatters ties the package back to the paper: being
// directed to a FAR front-end (anycast misrouting) forfeits the split-TCP
// win.
func TestFrontEndChoiceMatters(t *testing.T) {
	b, _ := setup(t)
	// A "far" front-end: same backend, but the client↔front-end path
	// costs as much as going direct.
	farFE, err := NewProxy(b.Addr(), farRTT)
	if err != nil {
		t.Fatal(err)
	}
	defer farFE.Close()
	nearFE, err := NewProxy(b.Addr(), farRTT)
	if err != nil {
		t.Fatal(err)
	}
	defer nearFE.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := farFE.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nearFE.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	viaNear, err := ColdFetch(ctx, nearFE.Addr(), nearRTT, "q")
	if err != nil {
		t.Fatal(err)
	}
	viaFar, err := ColdFetch(ctx, farFE.Addr(), farRTT, "q")
	if err != nil {
		t.Fatal(err)
	}
	if viaNear.Elapsed >= viaFar.Elapsed {
		t.Fatalf("near front-end %v not faster than far front-end %v", viaNear.Elapsed, viaFar.Elapsed)
	}
}

func TestSessionFetchReusesConnection(t *testing.T) {
	_, p := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := NewSessionFetch(nearRTT)
	defer s.Close()
	first, err := s.Fetch(ctx, p.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Fetch(ctx, p.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	// The second fetch skips the handshake RTT.
	if second.Elapsed >= first.Elapsed {
		t.Fatalf("keep-alive fetch %v not faster than first %v", second.Elapsed, first.Elapsed)
	}
}

func BenchmarkProxyFetch(b *testing.B) {
	backend, err := NewBackend()
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	p, err := NewProxy(backend.Addr(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	s := NewSessionFetch(0)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch(ctx, p.Addr(), "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// fakeClock advances one millisecond per reading, making Elapsed exactly
// deterministic: timedFetch reads the clock once at start and once at end,
// so every fetch measures precisely 1ms regardless of real scheduling.
func fakeClock() func() time.Time {
	var ticks int64
	return func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
}

func TestColdFetchClockInjection(t *testing.T) {
	b, _ := setup(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := ColdFetchClock(ctx, b.Addr(), 0, "q", fakeClock())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != time.Millisecond {
		t.Fatalf("Elapsed = %v with fake clock, want exactly 1ms", res.Elapsed)
	}
}

func TestSessionFetchClockInjection(t *testing.T) {
	b, _ := setup(t)
	s := NewSessionFetch(0)
	defer s.Close()
	s.Now = fakeClock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := s.Fetch(ctx, b.Addr(), "q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != time.Millisecond {
		t.Fatalf("Elapsed = %v with fake clock, want exactly 1ms", res.Elapsed)
	}
}
