package anycastcdn

import (
	"context"
	"net/netip"
	"time"

	"testing"

	"anycastcdn/internal/testutil"
)

func smallConfig(seed uint64) Config {
	return testutil.TinyConfig(seed)
}

func TestPublicAPIRoundTrip(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBeacons() == 0 {
		t.Fatal("no beacons")
	}
	suite := NewSuite(res)
	r := suite.Figure3()
	if r.Figure == nil || len(r.Figure.Series) == 0 {
		t.Fatal("figure 3 empty")
	}
}

func TestPublicPredictorFlow(t *testing.T) {
	res, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var train, next []Observation
	for _, m := range res.Beacons[0] {
		train = append(train, ObservationsFromMeasurement(m)...)
	}
	for _, m := range res.Beacons[1] {
		next = append(next, ObservationsFromMeasurement(m)...)
	}
	p := NewPredictor(DefaultPredictorConfig())
	pred := p.Train(train, ByPrefix)
	evals := Evaluator{Percentile: 0.5, MinSamples: 2}.Evaluate(pred, next, res.Volumes())
	if len(evals) == 0 {
		t.Fatal("no evaluations")
	}
	for _, e := range evals {
		if e.Predicted.Anycast && e.ImprovementMs != 0 {
			t.Fatal("anycast prediction must evaluate to zero")
		}
	}
}

func TestPublicTracer(t *testing.T) {
	w, err := BuildWorld(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(w)
	c := w.Population.Clients[0]
	d := tr.Diagnose(RoutingClient{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}, 0)
	if d.Category == "" || len(d.AnycastTrace.Hops) < 2 {
		t.Fatalf("empty diagnosis: %+v", d)
	}
}

func TestPublicCatalogAndTable(t *testing.T) {
	if len(WorldMetros()) < 150 {
		t.Fatal("catalog too small")
	}
	if r := CDNSizeTable(); r.Table == nil {
		t.Fatal("no CDN table")
	}
}

func TestPublicTestbedAndDataPath(t *testing.T) {
	// Exercise the testbed wrappers through the facade.
	tb, err := StartTestbed(TestbedConfig{
		FrontEnds:  []FrontEndSpec{{Site: 0, Name: "solo"}},
		AnycastFor: func(uint64) SiteID { return 0 },
		RTT: func(uint64, SiteID, bool) timeDurationAlias {
			return 2 * millisecond
		},
		ClientAddr: func(c uint64) netipAddrAlias { return addr4(10, 0, byte(c), 1) },
		ClientOf: func(p netipAddrAlias) (uint64, bool) {
			a4 := p.As4()
			return uint64(a4[2]), a4[0] == 10
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	bc := NewBeaconClient(tb)
	ctx, cancel := contextWithTimeout()
	defer cancel()
	res, err := bc.RunBeacon(ctx, 1, []string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anycast.Site != 0 || len(res.Unicast) != 1 {
		t.Fatalf("beacon result %+v", res)
	}

	// And the split-TCP data-path wrappers.
	backend, err := NewOriginBackend()
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	fe, err := NewFrontEndProxy(backend.Addr(), 10*millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	if err := fe.Warm(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := ColdFetch(ctx, fe.Addr(), millisecond, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if got.ServedBy != "front-end" || got.Elapsed <= 0 {
		t.Fatalf("fetch result %+v", got)
	}
}

func TestPublicConstants(t *testing.T) {
	if TestbedDomain != "cdn.test" {
		t.Fatalf("domain = %q", TestbedDomain)
	}
	if AnycastTarget.String() != "anycast" {
		t.Fatal("anycast target")
	}
	if ByPrefix == ByLDNS {
		t.Fatal("groupings must differ")
	}
	if MetricP25 >= MetricMedian {
		t.Fatal("metric ordering")
	}
}

// Small helpers keeping the facade tests free of extra imports noise.
type timeDurationAlias = time.Duration

type netipAddrAlias = netip.Addr

const millisecond = time.Millisecond

func addr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

func contextWithTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

func TestPublicFaultInjectionFlow(t *testing.T) {
	sc, err := ParseScenario("inflate europe day=1 for=2 ms=30")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 1 || sc.Events[0].Kind != FaultInflate {
		t.Fatalf("parsed scenario %+v", sc)
	}
	r, err := Resilience(smallConfig(4), sc)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, f := range r.BeaconDiffFrac {
		if f > 0 {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("inflate scenario produced no beacon divergence")
	}
	if !r.Recovered() {
		t.Fatal("world did not recover after the inflate window")
	}
	if r.Render() == "" {
		t.Fatal("empty resilience render")
	}
}

func TestPublicStreamingFlow(t *testing.T) {
	cfg := smallConfig(5)
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ss := NewStreamSuite(cfg, w)
	days := 0
	err = StreamWorld(cfg, w, func(d DayResult) error {
		days++
		return ss.Observe(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Fatalf("streamed %d days, want %d", days, cfg.Days)
	}
	if out := ss.Figure4().Render(); len(out) < 50 {
		t.Fatalf("streaming Figure 4 render too small:\n%s", out)
	}
}
