// Splittcp: demonstrate why front-end proximity — and therefore anycast's
// choice of front-end — matters. The paper's intro describes the CDN data
// path: the front-end "terminates the client's TCP connection and relays
// requests to a backend server in a data center". This example stands up
// a real origin, two real front-end proxies (one near, one far), and
// times cold client fetches over latency-emulated loopback connections.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anycastcdn"
)

func main() {
	const (
		nearRTT = 8 * time.Millisecond  // client to a well-placed front-end
		farRTT  = 90 * time.Millisecond // client to the data center (or a misrouted front-end)
	)

	backend, err := anycastcdn.NewOriginBackend()
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	nearFE, err := anycastcdn.NewFrontEndProxy(backend.Addr(), farRTT)
	if err != nil {
		log.Fatal(err)
	}
	defer nearFE.Close()
	farFE, err := anycastcdn.NewFrontEndProxy(backend.Addr(), farRTT)
	if err != nil {
		log.Fatal(err)
	}
	defer farFE.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Production front-ends keep warm connections to the backend.
	if err := nearFE.Warm(ctx); err != nil {
		log.Fatal(err)
	}
	if err := farFE.Warm(ctx); err != nil {
		log.Fatal(err)
	}

	direct, err := anycastcdn.ColdFetch(ctx, backend.Addr(), farRTT, "golang")
	if err != nil {
		log.Fatal(err)
	}
	viaNear, err := anycastcdn.ColdFetch(ctx, nearFE.Addr(), nearRTT, "golang")
	if err != nil {
		log.Fatal(err)
	}
	viaFar, err := anycastcdn.ColdFetch(ctx, farFE.Addr(), farRTT, "golang")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cold search query (new TCP connection), real sockets with emulated RTT:")
	fmt.Printf("  direct to data center (%v RTT):      %v\n", farRTT, direct.Elapsed.Round(time.Millisecond))
	fmt.Printf("  via NEARBY front-end (%v RTT):        %v   <- the CDN win\n", nearRTT, viaNear.Elapsed.Round(time.Millisecond))
	fmt.Printf("  via MISROUTED front-end (%v RTT):    %v   <- anycast sent us far: win forfeited\n", farRTT, viaFar.Elapsed.Round(time.Millisecond))
	fmt.Println()
	fmt.Println("the nearby front-end pays the TCP handshake on the short leg and rides a")
	fmt.Println("warm connection on the long leg — which is why the paper measures whether")
	fmt.Println("anycast actually delivers clients to nearby front-ends.")
}
