// Pathology: recreate the paper's §5 traceroute case studies — clients
// whose anycast route hands off at a remote peering point (the paper's
// Moscow→Stockholm and Denver→Phoenix examples) or enters the CDN at a
// site without a front-end — and print traceroute-style diagnoses.
package main

import (
	"fmt"
	"log"
	"sort"

	"anycastcdn"
)

func main() {
	w, err := anycastcdn.BuildWorld(anycastcdn.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	tracer := anycastcdn.NewTracer(w)

	// Diagnose every 20th client and keep the worst offenders.
	type finding struct {
		d     anycastcdn.Diagnosis
		c     anycastcdn.Client
		exKm  anycastcdn.Kilometers
		categ string
	}
	var findings []finding
	for i := 0; i < len(w.Population.Clients); i += 20 {
		c := w.Population.Clients[i]
		rc := anycastcdn.RoutingClient{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		d := tracer.Diagnose(rc, 0)
		findings = append(findings, finding{d: d, c: c, exKm: d.ExcessKm, categ: d.Category})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].exKm > findings[j].exKm })

	// Summary of categories.
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.categ]++
	}
	fmt.Println("diagnosis summary over sampled clients:")
	for cat, n := range counts {
		fmt.Printf("  %4d  %s\n", n, cat)
	}

	fmt.Println("\nthree worst anycast routes:")
	for _, f := range findings[:3] {
		fmt.Printf("\nclient /24 %s near %s (%s), ISP %s [%s policy]\n",
			f.c.Prefix, f.c.Metro, f.c.Country,
			w.ISPs.ISP(f.c.ISP).Name, w.ISPs.ISP(f.c.ISP).Policy)
		fmt.Printf("category: %s\nexcess distance: %.0f km\n\n", f.categ, f.exKm)
		fmt.Println(f.d.AnycastTrace.Render())
		fmt.Println("best alternative:")
		fmt.Println(f.d.BestUnicast.Render())
	}
}
