// Prediction: run the paper's §6 history-based prediction scheme — train
// on one day of beacon measurements, evaluate on the next — and compare
// ECS-prefix grouping, LDNS grouping, and the hybrid policy.
package main

import (
	"fmt"
	"log"

	"anycastcdn"
)

func main() {
	cfg := anycastcdn.DefaultConfig(7)
	cfg.Prefixes = 3000
	cfg.Days = 4
	res, err := anycastcdn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Convert two consecutive days of beacons into predictor observations.
	var train, next []anycastcdn.Observation
	for _, m := range res.Beacons[1] {
		train = append(train, anycastcdn.ObservationsFromMeasurement(m)...)
	}
	for _, m := range res.Beacons[2] {
		next = append(next, anycastcdn.ObservationsFromMeasurement(m)...)
	}
	vols := res.Volumes()

	configs := []struct {
		name string
		cfg  anycastcdn.PredictorConfig
		grp  anycastcdn.Grouping
	}{
		{"ECS /24, 25th-pct metric (paper)", anycastcdn.DefaultPredictorConfig(), anycastcdn.ByPrefix},
		{"LDNS, 25th-pct metric", anycastcdn.DefaultPredictorConfig(), anycastcdn.ByLDNS},
		{"ECS /24, median metric", anycastcdn.PredictorConfig{Metric: anycastcdn.MetricMedian, MinMeasurements: 20}, anycastcdn.ByPrefix},
		{"ECS /24, hybrid (10ms margin)", anycastcdn.PredictorConfig{Metric: anycastcdn.MetricP25, MinMeasurements: 20, HybridMarginMs: 10}, anycastcdn.ByPrefix},
	}

	fmt.Printf("%-36s %10s %10s %10s %10s\n",
		"scheme", "redirected", "improved", "worse", "net ms (w)")
	for _, c := range configs {
		pred := anycastcdn.NewPredictor(c.cfg).Train(train, c.grp)
		evals := anycastcdn.Evaluator{Percentile: 0.5, MinSamples: 2}.
			Evaluate(pred, next, vols)
		var wTotal, wImproved, wWorse, net float64
		for _, e := range evals {
			wTotal += e.Weight
			net += e.ImprovementMs.Float() * e.Weight
			switch {
			case e.ImprovementMs >= 1:
				wImproved += e.Weight
			case e.ImprovementMs <= -1:
				wWorse += e.Weight
			}
		}
		if wTotal == 0 {
			continue
		}
		fmt.Printf("%-36s %9.1f%% %9.1f%% %9.1f%% %10.2f\n",
			c.name,
			100*pred.RedirectedFraction(),
			100*wImproved/wTotal,
			100*wWorse/wTotal,
			net/wTotal)
	}
	fmt.Println("\nredirected: fraction of trained groups steered off anycast")
	fmt.Println("improved/worse: query-weighted /24s at least 1ms better/worse next day")
}
