// Quickstart: simulate a week of an anycast CDN and ask the paper's
// headline question — how often does anycast beat the best nearby unicast
// front-end, and by how much?
package main

import (
	"fmt"
	"log"

	"anycastcdn"
)

func main() {
	// A small, fast configuration. Everything derives from the seed:
	// rerunning this program reproduces these exact numbers.
	cfg := anycastcdn.DefaultConfig(42)
	cfg.Prefixes = 2000
	cfg.Days = 7

	res, err := anycastcdn.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d client /24s, %d beacon executions over %d days\n\n",
		cfg.Prefixes, res.TotalBeacons(), cfg.Days)

	// Per-request anycast penalty, straight from the beacon measurements.
	var total, slower25, slower100 int
	for _, day := range res.Beacons {
		for _, m := range day {
			total++
			p := m.AnycastPenaltyMs()
			if p >= 25 {
				slower25++
			}
			if p >= 100 {
				slower100++
			}
		}
	}
	fmt.Printf("requests where anycast was >=25ms slower than best unicast:  %5.1f%%\n",
		100*float64(slower25)/float64(total))
	fmt.Printf("requests where anycast was >=100ms slower than best unicast: %5.1f%%\n\n",
		100*float64(slower100)/float64(total))

	// The full Figure 3 (CCDF by region), rendered as a table.
	suite := anycastcdn.NewSuite(res)
	fmt.Println(suite.Figure3().Render())
}
