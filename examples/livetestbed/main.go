// Livetestbed: stand up a real (loopback) miniature of the paper's CDN —
// HTTP front-ends with injected latency, an authoritative DNS server with
// EDNS Client Subnet — and run live beacon measurements against it,
// showing a misrouted client being rescued by prediction-driven DNS
// redirection.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"anycastcdn"
)

func main() {
	// Three front-ends. Client 1 is well-routed; client 2's anycast path
	// lands on the far coast (a §5-style pathology), but the predictor
	// knows a better front-end for it.
	rtt := map[[2]uint64]time.Duration{
		{1, 0}: 3 * time.Millisecond, {1, 1}: 12 * time.Millisecond, {1, 2}: 28 * time.Millisecond,
		{2, 0}: 4 * time.Millisecond, {2, 1}: 11 * time.Millisecond, {2, 2}: 31 * time.Millisecond,
	}
	anycastFE := map[uint64]anycastcdn.SiteID{1: 0, 2: 2}

	tb, err := anycastcdn.StartTestbed(anycastcdn.TestbedConfig{
		FrontEnds: []anycastcdn.FrontEndSpec{
			{Site: 0, Name: "newyork"},
			{Site: 1, Name: "chicago"},
			{Site: 2, Name: "losangeles"},
		},
		AnycastFor: func(c uint64) anycastcdn.SiteID { return anycastFE[c] },
		PredictFor: func(c uint64) (anycastcdn.SiteID, bool) {
			if c == 2 {
				return 0, true // the §6 scheme redirects the misrouted client
			}
			return 0, false // everyone else stays on anycast
		},
		RTT: func(c uint64, fe anycastcdn.SiteID, anycast bool) time.Duration {
			return rtt[[2]uint64{c, uint64(fe)}]
		},
		ClientAddr: func(c uint64) netip.Addr {
			return netip.AddrFrom4([4]byte{10, 0, byte(c), 9})
		},
		ClientOf: func(p netip.Addr) (uint64, bool) {
			a4 := p.As4()
			return uint64(a4[2]), a4[0] == 10
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	fmt.Printf("loopback CDN up: 3 front-ends on port %d, DNS at %s\n\n", tb.Port(), tb.DNSAddr())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, clientID := range []uint64{1, 2} {
		bc := anycastcdn.NewBeaconClient(tb)
		res, err := bc.RunBeacon(ctx, clientID, []string{"newyork", "chicago", "losangeles"})
		if err != nil {
			log.Fatal(err)
		}
		best, _ := res.BestUnicast()
		www, err := bc.FetchWWW(ctx, clientID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %d:\n", clientID)
		fmt.Printf("  anycast      -> front-end %d in %v\n", res.Anycast.Site, res.Anycast.Elapsed.Round(time.Millisecond))
		for _, u := range res.Unicast {
			fmt.Printf("  unicast %-12s front-end %d in %v\n", u.Host, u.Site, u.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("  best unicast -> front-end %d in %v\n", best.Site, best.Elapsed.Round(time.Millisecond))
		fmt.Printf("  www (hybrid) -> front-end %d in %v\n\n", www.Site, www.Elapsed.Round(time.Millisecond))
	}
}
