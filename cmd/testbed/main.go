// Command testbed runs the live loopback miniature of the paper's system:
// HTTP front-ends on loopback aliases with simulated path latency, an
// authoritative DNS server with EDNS Client Subnet, and a beacon client
// sweep that prints anycast-vs-unicast comparisons and the effect of §6's
// prediction-driven redirection.
//
// Usage:
//
//	testbed [-seed N] [-clients N] [-frontends N]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/core"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testbed"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "simulation seed")
		nClients  = flag.Int("clients", 8, "clients to sweep")
		frontends = flag.Int("frontends", 6, "front-ends to stand up")
	)
	flag.Parse()
	if err := run(*seed, *nClients, *frontends); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run(seed uint64, nClients, nFE int) error {
	// Build a small simulated world to drive routing and latency, then
	// stand up real servers that mirror it.
	cfg := sim.DefaultConfig(seed)
	cfg.Prefixes = 512
	cfg.Days = 2
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		return err
	}
	model := w.Latency
	fes := w.Deployment.FrontEnds
	if nFE > len(fes) {
		nFE = len(fes)
	}
	specs := make([]testbed.FrontEndSpec, 0, nFE)
	chosen := map[topology.SiteID]bool{}
	for _, fe := range fes[:nFE] {
		specs = append(specs, testbed.FrontEndSpec{Site: fe.Site, Name: fe.Name})
		chosen[fe.Site] = true
	}
	// Helper lookups over the simulated world.
	anycastFor := func(clientID uint64) topology.SiteID {
		c := w.Population.Clients[clientID%uint64(len(w.Population.Clients))]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		a := w.Router.Assign(rc, w.Router.BaseIngress(rc))
		if chosen[a.FrontEnd] {
			return a.FrontEnd
		}
		// Anycast landed outside the stood-up subset: fall back to the
		// nearest stood-up front-end to the ingress.
		best, bestD := specs[0].Site, units.Kilometers(1e18)
		for _, sp := range specs {
			d := w.Router.Backbone().IGPDistanceKm(a.Ingress, sp.Site)
			if d < bestD {
				best, bestD = sp.Site, d
			}
		}
		return best
	}
	rttFor := func(clientID uint64, fe topology.SiteID, anycast bool) time.Duration {
		c := w.Population.Clients[clientID%uint64(len(w.Population.Clients))]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		var a bgp.Assignment
		if anycast {
			a = w.Router.Assign(rc, w.Router.BaseIngress(rc))
		} else {
			a = w.Router.UnicastAssignment(rc, fe)
		}
		p := latency.Path{
			PrefixID:   c.ID,
			EntryKey:   uint64(a.Ingress),
			AirKm:      a.AirKm,
			BackboneKm: a.BackboneKm,
			Unicast:    a.Unicast,
		}
		// Scale down 4x so the demo completes quickly.
		return time.Duration(model.BaseRTTms(p).Float()/4) * time.Millisecond
	}
	// Train the §6 predictor on one simulated day of beacons.
	res, err := sim.RunWorld(cfg, w)
	if err != nil {
		return err
	}
	var obs []core.Observation
	for _, m := range res.Beacons[0] {
		obs = append(obs, core.FromMeasurement(m)...)
	}
	pred := core.NewPredictor(core.DefaultConfig()).Train(obs, core.ByPrefix)
	predictFor := func(clientID uint64) (topology.SiteID, bool) {
		c := w.Population.Clients[clientID%uint64(len(w.Population.Clients))]
		t := pred.For(c.ID, w.Mapping.Resolver(c.ID).ID)
		if t.Anycast || !chosen[t.Site] {
			return 0, false
		}
		return t.Site, true
	}

	tb, err := testbed.Start(testbed.Config{
		FrontEnds:  specs,
		AnycastFor: anycastFor,
		PredictFor: predictFor,
		RTT:        rttFor,
		ClientAddr: func(clientID uint64) netip.Addr {
			c := w.Population.Clients[clientID%uint64(len(w.Population.Clients))]
			return c.Prefix.Addr(1)
		},
		ClientOf: clientTable(w).Lookup,
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	fmt.Printf("testbed up: %d front-ends on port %d, DNS at %s\n\n", nFE, tb.Port(), tb.DNSAddr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	names := make([]string, 0, 3)
	for _, sp := range specs[:min(3, len(specs))] {
		names = append(names, sp.Name)
	}
	fmt.Printf("%-8s %-14s %-12s %-14s %-12s %s\n",
		"client", "anycast-fe", "anycast-rtt", "best-unicast", "best-rtt", "www-fe (hybrid)")
	for i := 0; i < nClients; i++ {
		bc := testbed.NewBeaconClient(tb)
		clientID := uint64(i * 37)
		beacon, err := bc.RunBeacon(ctx, clientID, names)
		if err != nil {
			return err
		}
		www, err := bc.FetchWWW(ctx, clientID)
		if err != nil {
			return err
		}
		best, _ := beacon.BestUnicast()
		fmt.Printf("%-8d %-14s %-12v %-14s %-12v %s\n",
			clientID,
			siteName(w, beacon.Anycast.Site), beacon.Anycast.Elapsed.Round(time.Millisecond),
			siteName(w, best.Site), best.Elapsed.Round(time.Millisecond),
			siteName(w, www.Site))
	}
	return nil
}

// clientTable builds a longest-prefix-match table from client /24s so the
// DNS handler resolves ECS subnets in O(32) instead of scanning.
func clientTable(w *sim.World) *netaddr.Table[uint64] {
	var tb netaddr.Table[uint64]
	for _, c := range w.Population.Clients {
		tb.Insert24(c.Prefix, c.ID)
	}
	return &tb
}

func siteName(w *sim.World, s topology.SiteID) string {
	return w.Deployment.Backbone.Site(s).Metro.Name
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
