package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("anycastcdn/internal/latency",
		"BenchmarkSampleRTT-8   \t 11487560\t       106.9 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a valid line")
	}
	if r.Name != "BenchmarkSampleRTT-8" || r.Iterations != 11487560 {
		t.Errorf("name/iterations = %q/%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 106.9 {
		t.Errorf("ns/op = %v, want 106.9", r.NsPerOp)
	}
	if got := r.Metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op = %v, want 0", got)
	}
	if got := r.Metrics["B/op"]; got != 0 {
		t.Errorf("B/op = %v, want 0", got)
	}

	for _, line := range []string{
		"ok  \tanycastcdn/internal/latency\t1.2s",
		"BenchmarkBroken-8\tnot-a-number\t5 ns/op",
		"--- BENCH: BenchmarkX",
		"PASS",
	} {
		if _, ok := parseBenchLine("p", line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}

// TestRunRejoinsSplitEvents feeds run a realistic test2json stream where
// the benchmark name and its measurement line arrive as separate output
// events (the testing package prints the name, runs the benchmark, then
// prints the numbers) — the measurement event's Test field names the
// benchmark. A whole-line event must also still parse, and must not be
// double-counted.
func TestRunRejoinsSplitEvents(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"BenchmarkSplit\n"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"BenchmarkSplit      \t"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkSplit","Output":"       1\t129549734 ns/op\t         1.000 median-gain-ms\t43142016 B/op\t   22809 allocs/op\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkWhole-8\t100\t250 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"PASS\n"}`,
		`{"Action":"pass","Package":"p"}`,
	}, "\n")
	outPath := t.TempDir() + "/out.json"
	results, err := run(strings.NewReader(stream), outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkSplit" || results[0].NsPerOp != 129549734 {
		t.Errorf("split event parsed as %+v", results[0])
	}
	if results[0].Metrics["allocs/op"] != 22809 || results[0].Metrics["median-gain-ms"] != 1 {
		t.Errorf("split event metrics = %v", results[0].Metrics)
	}
	if results[1].Name != "BenchmarkWhole-8" || results[1].NsPerOp != 250 {
		t.Errorf("whole-line event parsed as %+v", results[1])
	}
}

func TestBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSampleRTT-8":   "BenchmarkSampleRTT",
		"BenchmarkSampleRTT-128": "BenchmarkSampleRTT",
		"BenchmarkSampleRTT":     "BenchmarkSampleRTT",
		"BenchmarkFoo-bar":       "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := benchName(in); got != want {
			t.Errorf("benchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func bench(name string, ns float64, metrics map[string]float64) result {
	return result{Package: "p", Name: name, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

func TestGateTolerance(t *testing.T) {
	baseline := []result{bench("BenchmarkA", 1000, nil)}

	fails, err := gate([]result{bench("BenchmarkA-8", 1100, nil)}, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 0 {
		t.Fatalf("within tolerance: fails=%v err=%v", fails, err)
	}

	fails, err = gate([]result{bench("BenchmarkA-8", 1300, nil)}, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 1 {
		t.Fatalf("regression: fails=%v err=%v", fails, err)
	}
	if !strings.Contains(fails[0], "BenchmarkA") ||
		!strings.Contains(fails[0], "1000") || !strings.Contains(fails[0], "1300") {
		t.Errorf("failure must name the benchmark and both ns/op values: %q", fails[0])
	}

	fails, err = gate(nil, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "missing from this run") {
		t.Fatalf("missing benchmark: fails=%v err=%v", fails, err)
	}
}

func TestGateMinSpeedup(t *testing.T) {
	baseline := []result{bench("BenchmarkFloor", 9000, nil)}

	fails, err := gate([]result{bench("BenchmarkFloor-4", 3000, nil)}, baseline, 0.15, "BenchmarkFloor=3", "", "")
	if err != nil || len(fails) != 0 {
		t.Fatalf("exactly 3x: fails=%v err=%v", fails, err)
	}

	fails, err = gate([]result{bench("BenchmarkFloor-4", 4000, nil)}, baseline, 0.15, "BenchmarkFloor=3", "", "")
	if err != nil || len(fails) != 1 {
		t.Fatalf("only 2.25x: fails=%v err=%v", fails, err)
	}
	if !strings.Contains(fails[0], "BenchmarkFloor") ||
		!strings.Contains(fails[0], "9000") || !strings.Contains(fails[0], "4000") {
		t.Errorf("failure must name the benchmark and both ns/op values: %q", fails[0])
	}

	// A minspeedup target absent from the baseline is a config error.
	fails, err = gate([]result{bench("BenchmarkFloor-4", 10, nil)}, baseline, 0.15, "BenchmarkGone=2", "", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkGone") {
		t.Fatalf("unknown minspeedup target: fails=%v err=%v", fails, err)
	}
}

func TestGateMaxAllocs(t *testing.T) {
	cur := []result{
		bench("BenchmarkZero-8", 10, map[string]float64{"allocs/op": 0}),
		bench("BenchmarkLeaky-8", 10, map[string]float64{"allocs/op": 3}),
		bench("BenchmarkSilent-8", 10, nil),
	}

	fails, err := gate(cur, nil, 0.15, "", "BenchmarkZero=0", "")
	if err != nil || len(fails) != 0 {
		t.Fatalf("zero allocs: fails=%v err=%v", fails, err)
	}

	fails, err = gate(cur, nil, 0.15, "", "BenchmarkLeaky=0", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "3 allocs/op") {
		t.Fatalf("leaky: fails=%v err=%v", fails, err)
	}

	// A benchmark without ReportAllocs must fail, not silently pass.
	fails, err = gate(cur, nil, 0.15, "", "BenchmarkSilent=0", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "ReportAllocs") {
		t.Fatalf("missing metric: fails=%v err=%v", fails, err)
	}

	fails, err = gate(cur, nil, 0.15, "", "BenchmarkAbsent=0", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "did not run") {
		t.Fatalf("absent benchmark: fails=%v err=%v", fails, err)
	}
}

func TestGateMalformedSpec(t *testing.T) {
	if _, err := gate(nil, nil, 0.15, "BenchmarkA", "", ""); err == nil {
		t.Error("want error for spec without '='")
	}
	if _, err := gate(nil, nil, 0.15, "", "BenchmarkA=x", ""); err == nil {
		t.Error("want error for non-numeric value")
	}
}

// TestGateBaselineMatchedByPackage pins the package-collision fix: a
// benchmark with the same bare name in a DIFFERENT package must not
// satisfy a baseline entry — deleting a gated benchmark while an
// unrelated package happens to define one with the same name has to fail
// the gate, not silently pass it.
func TestGateBaselineMatchedByPackage(t *testing.T) {
	baseline := []result{{Package: "pkg/a", Name: "BenchmarkShared", Iterations: 1, NsPerOp: 1000}}
	impostor := []result{{Package: "pkg/b", Name: "BenchmarkShared-8", Iterations: 1, NsPerOp: 10}}

	fails, err := gate(impostor, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 1 {
		t.Fatalf("same-name bench in another package masked the deletion: fails=%v err=%v", fails, err)
	}
	if !strings.Contains(fails[0], "missing from this run") || !strings.Contains(fails[0], "pkg/a") {
		t.Errorf("failure must name the missing benchmark's package: %q", fails[0])
	}

	// The real benchmark in the right package still gates normally, even
	// with the impostor present.
	both := append([]result{{Package: "pkg/a", Name: "BenchmarkShared-8", Iterations: 1, NsPerOp: 900}}, impostor...)
	fails, err = gate(both, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 0 {
		t.Fatalf("correct package within tolerance: fails=%v err=%v", fails, err)
	}
	both[0].NsPerOp = 5000
	fails, err = gate(both, baseline, 0.15, "", "", "")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "regressed") {
		t.Fatalf("regression in the right package must fail despite the fast impostor: fails=%v err=%v", fails, err)
	}
}

func TestGateMaxBytes(t *testing.T) {
	cur := []result{
		bench("BenchmarkLean-8", 10, map[string]float64{"B/op": 1024}),
		bench("BenchmarkFat-8", 10, map[string]float64{"B/op": 4096}),
	}

	fails, err := gate(cur, nil, 0.15, "", "", "BenchmarkLean=2048")
	if err != nil || len(fails) != 0 {
		t.Fatalf("under the byte ceiling: fails=%v err=%v", fails, err)
	}

	fails, err = gate(cur, nil, 0.15, "", "", "BenchmarkFat=2048")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "4096 B/op") {
		t.Fatalf("over the byte ceiling: fails=%v err=%v", fails, err)
	}

	fails, err = gate(cur, nil, 0.15, "", "", "BenchmarkAbsent=1")
	if err != nil || len(fails) != 1 || !strings.Contains(fails[0], "did not run") {
		t.Fatalf("absent benchmark: fails=%v err=%v", fails, err)
	}
}
