// Command benchjson summarizes a `go test -json` stream into a compact
// machine-readable benchmark report. It reads test2json events on stdin,
// extracts the benchmark result lines ("BenchmarkX-8  42  123456 ns/op
// ..."), and writes them as sorted JSON, so CI can archive one stable
// artifact (BENCH_repro.json) per run instead of scraping logs:
//
//	go test -bench=. -benchtime=1x -run '^$' -json ./... | benchjson -o BENCH_repro.json
//
// With -compare, benchjson additionally gates the run against a
// checked-in baseline (BENCH_baseline.json) and exits non-zero naming the
// offending benchmark with its baseline and current ns/op:
//
//	... | benchjson -o BENCH_repro.json -compare BENCH_baseline.json -tolerance 0.15 \
//	        -minspeedup BenchmarkAblationFloor50=3 \
//	        -maxallocs BenchmarkSubstream=0,BenchmarkSampleRTT=0
//
// Three checks run, all against the current results:
//   - every benchmark named in the baseline must not exceed its baseline
//     ns/op by more than -tolerance (fractional; 0.15 = +15%);
//   - each -minspeedup entry must be at least that factor faster than its
//     baseline ns/op (locks in an optimization instead of merely bounding
//     regression);
//   - each -maxallocs entry's allocs/op metric must not exceed the given
//     count (requires b.ReportAllocs in the benchmark).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output record benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// result is one benchmark measurement.
type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_repro.json", "output file")
		compare   = flag.String("compare", "", "baseline JSON file to gate against (empty = no gate)")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression versus baseline")
		minSpeed  = flag.String("minspeedup", "", "comma-separated Benchmark=factor minimum speedups versus baseline")
		maxAlloc  = flag.String("maxallocs", "", "comma-separated Benchmark=count allocs/op ceilings")
		maxBytes  = flag.String("maxbytes", "", "comma-separated Benchmark=count B/op ceilings")
	)
	flag.Parse()
	results, err := run(os.Stdin, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare == "" {
		return
	}
	baseline, err := loadBaseline(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	failures, err := gate(results, baseline, *tolerance, *minSpeed, *maxAlloc, *maxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: GATE FAILED:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchjson: gate passed against %s (%d baseline benchmarks, tolerance %.0f%%)\n",
		*compare, len(baseline), *tolerance*100)
}

func run(in io.Reader, outPath string) ([]result, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var results []result
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // non-JSON lines (plain `go test` output) are skipped
		}
		if ev.Action != "output" {
			continue
		}
		if r, ok := parseBenchLine(ev.Package, ev.Output); ok {
			results = append(results, r)
			continue
		}
		// The testing package prints the benchmark name, runs the
		// benchmark, then prints the measurements, so test2json usually
		// delivers the name as its own partial-line event and the
		// "       1\t123 ns/op\t..." line separately — with the benchmark
		// name in the event's Test field. Rejoin them.
		if strings.HasPrefix(ev.Test, "Benchmark") && strings.Contains(ev.Output, "ns/op") {
			if r, ok := parseBenchLine(ev.Package, ev.Test+"\t"+ev.Output); ok {
				results = append(results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("benchjson: wrote %d benchmark results to %s\n", len(results), outPath)
	return results, nil
}

// parseBenchLine parses one benchmark result line of `go test -bench`
// output: "BenchmarkName-8  20  123456 ns/op  512 B/op  3 allocs/op".
func parseBenchLine(pkg, line string) (result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || !strings.Contains(line, "ns/op") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Package: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}

func loadBaseline(path string) ([]result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var rs []result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return rs, nil
}

// benchName strips the -GOMAXPROCS suffix go appends to benchmark names
// ("BenchmarkX-8" → "BenchmarkX"), so baselines compare across machines.
func benchName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseRequirements parses "BenchmarkA=3,BenchmarkB=0" lists.
func parseRequirements(spec string) (map[string]float64, error) {
	out := map[string]float64{}
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("malformed requirement %q (want Benchmark=value)", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed requirement value in %q: %w", part, err)
		}
		out[name] = v
	}
	return out, nil
}

// gate checks current results against the baseline and the explicit
// speedup/allocation/byte requirements, returning one message per
// violation. Baseline entries are matched by (package, name): a
// same-named benchmark in a different package must not satisfy — and so
// silently mask the deletion of — a gated benchmark. The requirement
// specs (-minspeedup, -maxallocs, -maxbytes) stay keyed by bare name for
// CLI ergonomics; a bare name that matches several packages applies the
// requirement to every match.
func gate(current, baseline []result, tolerance float64, minSpeedSpec, maxAllocSpec, maxBytesSpec string) ([]string, error) {
	minSpeed, err := parseRequirements(minSpeedSpec)
	if err != nil {
		return nil, err
	}
	maxAlloc, err := parseRequirements(maxAllocSpec)
	if err != nil {
		return nil, err
	}
	maxBytes, err := parseRequirements(maxBytesSpec)
	if err != nil {
		return nil, err
	}
	type benchKey struct{ pkg, name string }
	cur := make(map[benchKey]result, len(current))
	byName := make(map[string][]result, len(current))
	for _, r := range current {
		name := benchName(r.Name)
		cur[benchKey{r.Package, name}] = r
		byName[name] = append(byName[name], r)
	}
	var failures []string
	speedChecked := map[string]bool{}
	for _, base := range baseline {
		name := benchName(base.Name)
		r, ok := cur[benchKey{base.Package, name}]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s (%s): present in baseline but missing from this run", name, base.Package))
			continue
		}
		if base.NsPerOp > 0 && r.NsPerOp > base.NsPerOp*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s regressed: baseline %.0f ns/op, current %.0f ns/op (%+.0f%%, tolerance %.0f%%)",
				name, base.NsPerOp, r.NsPerOp, (r.NsPerOp/base.NsPerOp-1)*100, tolerance*100))
		}
		if factor, want := minSpeed[name]; want {
			speedChecked[name] = true
			if r.NsPerOp*factor > base.NsPerOp {
				failures = append(failures, fmt.Sprintf(
					"%s speedup %.2fx is below the required %.2fx: baseline %.0f ns/op, current %.0f ns/op",
					name, base.NsPerOp/r.NsPerOp, factor, base.NsPerOp, r.NsPerOp))
			}
		}
	}
	// Any minspeedup entries left over name benchmarks absent from the
	// baseline — that is a configuration error worth failing loudly on.
	for name := range minSpeed {
		if !speedChecked[name] {
			failures = append(failures, fmt.Sprintf("%s: -minspeedup given but benchmark is not in the baseline", name))
		}
	}
	checkMetric := func(spec map[string]float64, flagName, unit, verb string) {
		for name, limit := range spec {
			rs := byName[name]
			if len(rs) == 0 {
				failures = append(failures, fmt.Sprintf("%s: %s given but benchmark did not run", name, flagName))
				continue
			}
			for _, r := range rs {
				v, ok := r.Metrics[unit]
				if !ok {
					failures = append(failures, fmt.Sprintf("%s: no %s metric (missing b.ReportAllocs?)", name, unit))
					continue
				}
				if v > limit {
					failures = append(failures, fmt.Sprintf(
						"%s %s %.0f %s, limit %.0f (%.0f ns/op)", name, verb, v, unit, limit, r.NsPerOp))
				}
			}
		}
	}
	checkMetric(maxAlloc, "-maxallocs", "allocs/op", "allocates")
	checkMetric(maxBytes, "-maxbytes", "B/op", "allocates")
	sort.Strings(failures)
	return failures, nil
}
