// Command benchjson summarizes a `go test -json` stream into a compact
// machine-readable benchmark report. It reads test2json events on stdin,
// extracts the benchmark result lines ("BenchmarkX-8  42  123456 ns/op
// ..."), and writes them as sorted JSON, so CI can archive one stable
// artifact (BENCH_repro.json) per run instead of scraping logs:
//
//	go test -bench=. -benchtime=1x -run '^$' -json ./... | benchjson -o BENCH_repro.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output record benchjson needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark measurement.
type result struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_repro.json", "output file")
	flag.Parse()
	if err := run(os.Stdin, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, outPath string) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var results []result
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // non-JSON lines (plain `go test` output) are skipped
		}
		if ev.Action != "output" {
			continue
		}
		if r, ok := parseBenchLine(ev.Package, ev.Output); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %d benchmark results to %s\n", len(results), outPath)
	return nil
}

// parseBenchLine parses one benchmark result line of `go test -bench`
// output: "BenchmarkName-8  20  123456 ns/op  512 B/op  3 allocs/op".
func parseBenchLine(pkg, line string) (result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || !strings.Contains(line, "ns/op") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Package: pkg, Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
