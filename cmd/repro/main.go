// Command repro regenerates the tables and figures of "Analyzing the
// Performance of an Anycast CDN" (IMC 2015) from the simulation substrate.
//
// Usage:
//
//	repro [-seed N] [-prefixes N] [-days N] [experiment ...]
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 cdntable all
// (default: all), plus the extensions: stability (the metric-stability
// result §6 omits), hybrid (month-long hybrid deployment), tcp (§2's
// TCP-disruption claim), loadshed (FastRoute-style shedding), and ext
// (all extensions).
//
// -export DIR additionally writes each figure as CSV plus a gnuplot
// script.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"anycastcdn/internal/experiments"
	"anycastcdn/internal/sim"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "simulation seed")
		prefixes = flag.Int("prefixes", 0, "client /24 count (0 = default)")
		days     = flag.Int("days", 0, "simulated days (0 = default)")
		quiet    = flag.Bool("q", false, "print only paper-vs-measured headlines")
		asJSON   = flag.Bool("json", false, "emit reports as JSON instead of text")
		export   = flag.String("export", "", "directory to export figure CSVs and gnuplot scripts")
	)
	flag.Parse()
	if err := run(*seed, *prefixes, *days, *quiet, *asJSON, *export, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(seed uint64, prefixes, days int, quiet, asJSON bool, export string, wanted []string) error {
	cfg := sim.DefaultConfig(seed)
	if prefixes > 0 {
		cfg.Prefixes = prefixes
	}
	if days > 0 {
		cfg.Days = days
	}
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}

	needsSim := false
	for _, w := range wanted {
		if w != "cdntable" && w != "density" {
			needsSim = true
		}
	}
	var suite *experiments.Suite
	if needsSim {
		start := time.Now()
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("simulated %d client /24s over %d days: %d beacon executions in %v\n\n",
			cfg.Prefixes, cfg.Days, res.TotalBeacons(), time.Since(start).Round(time.Millisecond))
		suite = experiments.NewSuite(res)
	}

	reports, err := collect(suite, cfg, wanted)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	for _, r := range reports {
		switch {
		case asJSON:
			// Already emitted above; only exports remain.
		case quiet:
			fmt.Printf("[%s]\n", r.ID)
			for _, h := range r.Lines {
				fmt.Printf("  %-52s paper: %-22s measured: %s\n", h.Name, h.Paper, h.Measured)
			}
		default:
			fmt.Println(r.Render())
		}
		if export != "" {
			path, err := experiments.ExportCSV(r, export)
			if err != nil {
				return err
			}
			fmt.Println("exported", path)
			if r.Figure != nil {
				gp, err := experiments.ExportGnuplot(r, export)
				if err != nil {
					return err
				}
				fmt.Println("exported", gp)
			}
		}
	}
	return nil
}

func collect(s *experiments.Suite, cfg sim.Config, wanted []string) ([]experiments.Report, error) {
	var out []experiments.Report
	for _, w := range wanted {
		switch w {
		case "all":
			out = append(out, s.All()...)
		case "fig1":
			out = append(out, s.Figure1())
		case "fig2":
			out = append(out, s.Figure2())
		case "fig3":
			out = append(out, s.Figure3())
		case "fig4":
			out = append(out, s.Figure4())
		case "fig5":
			out = append(out, s.Figure5())
		case "fig6":
			out = append(out, s.Figure6())
		case "fig7":
			out = append(out, s.Figure7())
		case "fig8":
			out = append(out, s.Figure8())
		case "fig9":
			out = append(out, s.Figure9())
		case "cdntable":
			out = append(out, experiments.CDNSizeTable())
		case "stability":
			out = append(out, s.MetricStability())
		case "hybrid":
			out = append(out, s.HybridDeployment(10))
		case "tcp":
			out = append(out, s.TCPDisruption())
		case "loadshed":
			out = append(out, s.LoadShedding(4))
		case "catchment":
			out = append(out, s.Catchments(15))
		case "density":
			r, err := experiments.DeploymentDensity(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		case "ext":
			out = append(out,
				s.MetricStability(),
				s.HybridDeployment(10),
				s.TCPDisruption(),
				s.LoadShedding(4),
				s.Catchments(15))
			r, err := experiments.DeploymentDensity(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		default:
			return nil, fmt.Errorf("unknown experiment %q", w)
		}
	}
	return out, nil
}
