// Command anycastsim runs the anycast CDN simulation and exports its
// datasets — beacon measurements and passive logs — as CSV (the same two
// datasets §3.2 of the paper collects), so external tooling can rerun the
// analysis.
//
// The simulation streams day by day, so memory stays bounded even at
// paper-like scale (hundreds of thousands of client /24s):
//
//	anycastsim -prefixes 200000 -days 30 -out data
//
// Writes beacons.csv, passive.csv, clients.csv and frontends.csv to the
// output directory.
//
// A fault scenario can be injected with -scenario, given either inline
// (semicolon-separated events) or as a path to a scenario file:
//
//	anycastsim -days 12 -scenario 'drain paris day=3 for=2; inflate europe day=5 ms=40'
//	anycastsim -days 12 -scenario maintenance.scenario
//
// Load-aware anycast (FastRoute-style DNS-layer spillover, or the naive
// withdrawal strategy it replaces) activates with -loadpolicy; the run
// then also writes utilization.csv with each front-end's daily load
// picture:
//
//	anycastsim -days 12 -scenario 'surge south-america day=2 for=5 qps=15' -loadpolicy fastroute
//
// Profiling the hot path (inspect with `go tool pprof`):
//
//	anycastsim -prefixes 20000 -days 12 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Distributed mode shards the client population across a fleet of worker
// processes (re-execs of this binary with -worker) and merges their
// per-day deltas into the same reports a single-process -reports run
// writes, byte for byte:
//
//	anycastsim -prefixes 4000000 -days 30 -distribute 4 -out data
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"anycastcdn/internal/distsim"
	"anycastcdn/internal/experiments"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/load"
	"anycastcdn/internal/sim"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "simulation seed")
		prefixes   = flag.Int("prefixes", 0, "client /24 count (0 = default)")
		days       = flag.Int("days", 0, "simulated days (0 = default)")
		out        = flag.String("out", ".", "output directory")
		scenario   = flag.String("scenario", "", "fault scenario: inline event text or a file path")
		loadpolicy = flag.String("loadpolicy", "off", "load-aware anycast policy: off, static, fastroute or withdraw")
		reports    = flag.Bool("reports", false, "aggregate the passive-log experiment reports online and write reports.txt")
		beaconrate = flag.Float64("beaconrate", -1, "beacon sample rate override (0 disables beacons; < 0 = default)")
		distribute = flag.Int("distribute", 0, "shard the run across this many worker processes and write the merged reports")
		worker     = flag.Bool("worker", false, "serve as a distributed worker on inherited fd 3 (internal; used by -distribute)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()
	if *worker {
		if err := distsim.ServeFD(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "anycastsim worker:", err)
			os.Exit(1)
		}
		return
	}
	if *distribute > 0 {
		if err := runDistributed(*seed, *prefixes, *days, *out, *scenario, *loadpolicy, *beaconrate, *distribute); err != nil {
			fmt.Fprintln(os.Stderr, "anycastsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := runProfiled(*seed, *prefixes, *days, *out, *scenario, *loadpolicy, *reports, *beaconrate, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "anycastsim:", err)
		os.Exit(1)
	}
}

// runProfiled wraps run with the optional pprof captures, so profile
// teardown happens on the error paths too.
func runProfiled(seed uint64, prefixes, days int, out, scenario, loadpolicy string, reports bool, beaconrate float64, cpuprofile, memprofile string) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "anycastsim: closing CPU profile:", err)
			}
		}()
	}
	err := run(seed, prefixes, days, out, scenario, loadpolicy, reports, beaconrate)
	if memprofile != "" {
		if merr := writeHeapProfile(memprofile); err == nil {
			err = merr
		}
	}
	return err
}

// writeHeapProfile snapshots live-heap allocations after a GC, matching
// what `go test -memprofile` reports.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing heap profile: %w", err)
	}
	return f.Close()
}

// loadScenario interprets the -scenario value: anything containing an
// event separator, option syntax, or a comment marker is inline text
// (every event carries "day=", so only a bare filename lacks all of
// them), otherwise it is read as a file.
func loadScenario(arg string) (*faults.Scenario, error) {
	if arg == "" {
		return nil, nil
	}
	text := arg
	if !strings.ContainsAny(arg, ";=#\n") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("reading scenario file: %w", err)
		}
		text = string(b)
	}
	sc, err := faults.ParseScenario(text)
	if err != nil {
		return nil, err
	}
	return &sc, nil
}

// csvFile couples a buffered writer with its file for clean teardown.
type csvFile struct {
	f *os.File
	w *bufio.Writer
}

func createCSV(dir, name, header string) (*csvFile, error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := fmt.Fprintln(w, header); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &csvFile{f: f, w: w}, nil
}

func (c *csvFile) close() error {
	if err := c.w.Flush(); err != nil {
		_ = c.f.Close()
		return err
	}
	return c.f.Close()
}

// buildConfig assembles the simulation configuration from the CLI flags
// shared by the single-process and distributed modes.
func buildConfig(seed uint64, prefixes, days int, scenario, loadpolicy string, beaconrate float64) (sim.Config, error) {
	cfg := sim.DefaultConfig(seed)
	if prefixes > 0 {
		cfg.Prefixes = prefixes
	}
	if days > 0 {
		cfg.Days = days
	}
	if beaconrate >= 0 {
		// Disabling beacons (-beaconrate 0) is how paper-scale passive runs
		// avoid paying for active measurements they will not analyze.
		cfg.BeaconSampleRate = beaconrate
	}
	sc, err := loadScenario(scenario)
	if err != nil {
		return cfg, err
	}
	cfg.Scenario = sc
	if sc != nil {
		fmt.Println("scenario:", sc.Summary())
	}
	if loadpolicy != "" && loadpolicy != "off" {
		p, err := load.ParsePolicy(loadpolicy)
		if err != nil {
			return cfg, err
		}
		cfg.LoadManager = &load.ManagerConfig{Policy: p}
		fmt.Println("load policy:", p)
	}
	return cfg, nil
}

// runDistributed shards the simulation across a fleet of worker
// subprocesses and writes the merged reports (and, for managed runs, the
// fleet utilization table). The raw per-record CSVs stay with the
// workers' shards and are not collected: distributed mode is the
// analysis path for populations too large to simulate in one process.
func runDistributed(seed uint64, prefixes, days int, out, scenario, loadpolicy string, beaconrate float64, shards int) error {
	cfg, err := buildConfig(seed, prefixes, days, scenario, loadpolicy, beaconrate)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	start := time.Now()
	// A paper-scale day can take minutes of fleet compute on a contended
	// machine, and the stall deadline bounds a whole protocol step (one
	// day frame), so the CLI allows far more silence than the library
	// default before declaring a worker wedged. A crashed worker still
	// surfaces immediately via EOF.
	res, err := distsim.Run(context.Background(), cfg, distsim.Options{
		Shards:       shards,
		StallTimeout: 10 * time.Minute,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d prefixes x %d days across %d workers: %d records, %d beacons in %v\n",
		cfg.Prefixes, cfg.Days, len(res.Workers), res.Records, res.Beacons,
		time.Since(start).Round(time.Millisecond))
	for _, ws := range res.Workers {
		fmt.Printf("  worker %d: clients [%d, %d), peak RSS %.1f MiB\n",
			ws.Shard, ws.Lo, ws.Hi, float64(ws.PeakRSSBytes)/(1<<20))
	}
	if err := writeReports(out, res.Suite); err != nil {
		return err
	}
	names := []string{"reports.txt"}
	if res.Utilization != nil {
		w := res.Suite.World
		utilization, err := createCSV(out, "utilization.csv",
			"day,site,metro,queries,capacity,utilization,shed_frac,withdrawn")
		if err != nil {
			return err
		}
		for day, units := range res.Utilization {
			for _, u := range units {
				if _, err := fmt.Fprintf(utilization.w, "%d,%d,%s,%.0f,%.0f,%.4f,%.4f,%t\n",
					day, u.Site, w.Deployment.Backbone.Site(u.Site).Metro.Name,
					u.Queries, u.Capacity, u.Utilization(), u.ShedFrac, u.Withdrawn); err != nil {
					utilization.close()
					return err
				}
			}
		}
		if err := utilization.close(); err != nil {
			return err
		}
		names = append(names, "utilization.csv")
	}
	for _, name := range names {
		fmt.Println("wrote", filepath.Join(out, name))
	}
	return nil
}

func run(seed uint64, prefixes, days int, out, scenario, loadpolicy string, reports bool, beaconrate float64) error {
	cfg, err := buildConfig(seed, prefixes, days, scenario, loadpolicy, beaconrate)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		return err
	}
	var suite *experiments.StreamSuite
	if reports {
		suite = experiments.NewStreamSuite(cfg, w)
	}

	beacons, err := createCSV(out, "beacons.csv",
		"day,query_id,client_id,region,ldns,anycast_site,anycast_rtt_ms,u1_site,u1_rtt_ms,u2_site,u2_rtt_ms,u3_site,u3_rtt_ms")
	if err != nil {
		return err
	}
	passive, err := createCSV(out, "passive.csv",
		"day,client_id,front_end,switched,prev_front_end,queries")
	if err != nil {
		beacons.close()
		return err
	}
	var utilization *csvFile
	if cfg.LoadManager != nil {
		utilization, err = createCSV(out, "utilization.csv",
			"day,site,metro,queries,capacity,utilization,shed_frac,withdrawn")
		if err != nil {
			beacons.close()
			passive.close()
			return err
		}
	}

	start := time.Now()
	var nBeacons int
	err = sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		for _, m := range d.Beacons {
			nBeacons++
			_, err := fmt.Fprintf(beacons.w, "%d,%d,%d,%s,%d,%d,%.0f,%d,%.0f,%d,%.0f,%d,%.0f\n",
				d.Day, m.QueryID, m.ClientID, m.Region, m.LDNS,
				m.Anycast.Site, m.Anycast.RTTms,
				m.Unicast[0].Site, m.Unicast[0].RTTms,
				m.Unicast[1].Site, m.Unicast[1].RTTms,
				m.Unicast[2].Site, m.Unicast[2].RTTms)
			if err != nil {
				return err
			}
		}
		for _, r := range d.Passive {
			_, err := fmt.Fprintf(passive.w, "%d,%d,%d,%t,%d,%d\n",
				r.Day, r.ClientID, r.FrontEnd, r.Switched, r.PrevFrontEnd, r.Queries)
			if err != nil {
				return err
			}
		}
		for _, u := range d.Utilization {
			_, err := fmt.Fprintf(utilization.w, "%d,%d,%s,%.0f,%.0f,%.4f,%.4f,%t\n",
				d.Day, u.Site, w.Deployment.Backbone.Site(u.Site).Metro.Name,
				u.Queries, u.Capacity, u.Utilization(), u.ShedFrac, u.Withdrawn)
			if err != nil {
				return err
			}
		}
		if suite != nil {
			return suite.Observe(d)
		}
		return nil
	})
	if cerr := beacons.close(); err == nil {
		err = cerr
	}
	if cerr := passive.close(); err == nil {
		err = cerr
	}
	if utilization != nil {
		if cerr := utilization.close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d prefixes x %d days: %d beacons in %v\n",
		cfg.Prefixes, cfg.Days, nBeacons, time.Since(start).Round(time.Millisecond))

	if err := writeClients(out, w); err != nil {
		return err
	}
	if err := writeFrontEnds(out, w); err != nil {
		return err
	}
	names := []string{"beacons.csv", "passive.csv", "clients.csv", "frontends.csv"}
	if utilization != nil {
		names = append(names, "utilization.csv")
	}
	if suite != nil {
		if err := writeReports(out, suite); err != nil {
			return err
		}
		names = append(names, "reports.txt")
	}
	for _, name := range names {
		fmt.Println("wrote", filepath.Join(out, name))
	}
	return nil
}

// writeReports renders the streaming suite's passive-log experiments —
// computed online during the CSV pass, so even a million-prefix month
// never holds more than one day of raw output — into reports.txt.
func writeReports(dir string, suite *experiments.StreamSuite) error {
	f, err := os.Create(filepath.Join(dir, "reports.txt"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range []experiments.Report{
		suite.Figure4(),
		suite.Figure7(),
		suite.Figure8(),
		suite.Catchments(10),
		suite.TCPDisruption(),
		suite.LoadShedding(4),
	} {
		if _, err := fmt.Fprintln(w, r.Render()); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeClients(dir string, w *sim.World) error {
	c, err := createCSV(dir, "clients.csv",
		"client_id,prefix,lat,lon,metro,region,country,isp,volume")
	if err != nil {
		return err
	}
	for _, cl := range w.Population.Clients {
		if _, err := fmt.Fprintf(c.w, "%d,%s,%.4f,%.4f,%s,%s,%s,%d,%.4f\n",
			cl.ID, cl.Prefix, cl.Point.Lat, cl.Point.Lon, cl.Metro, cl.Region, cl.Country, cl.ISP, cl.Volume); err != nil {
			c.close()
			return err
		}
	}
	return c.close()
}

func writeFrontEnds(dir string, w *sim.World) error {
	c, err := createCSV(dir, "frontends.csv",
		"site,metro,region,lat,lon,unicast_prefix")
	if err != nil {
		return err
	}
	for _, fe := range w.Deployment.FrontEnds {
		s := w.Deployment.Backbone.Site(fe.Site)
		if _, err := fmt.Fprintf(c.w, "%d,%s,%s,%.4f,%.4f,%s\n",
			fe.Site, s.Metro.Name, s.Metro.Region, s.Metro.Point.Lat, s.Metro.Point.Lon, fe.Unicast); err != nil {
			c.close()
			return err
		}
	}
	return c.close()
}
