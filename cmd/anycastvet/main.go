// Command anycastvet runs the repository's custom static-analysis suite
// (internal/analysis) over the module and reports invariant violations:
// nondeterminism in replay-critical packages, dropped errors on the
// network paths, mutex misuse, panics in library code, goroutines with no
// join/cancel path, dnswire net I/O that ignores the caller's ctx,
// bare-float64 latency/distance quantities that bypass internal/units,
// and exported mutex-holding types with no documented locking contract.
//
// Usage:
//
//	go run ./cmd/anycastvet ./...              # whole module
//	go run ./cmd/anycastvet ./internal/sim/... # one subtree
//	go run ./cmd/anycastvet -json ./...        # machine-readable output
//	go run ./cmd/anycastvet -list              # describe the analyzers
//	go run ./cmd/anycastvet -checks goroutineleak,ctxpropagation ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anycastcdn/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, an := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", an.Name, an.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if matchAny(pkg.Dir, patterns) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "anycastvet: no packages match %v\n", patterns)
		os.Exit(2)
	}

	diags := analysis.Run(selected, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "anycastvet: %d package(s), %d diagnostic(s)\n", len(selected), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, an := range all {
		byName[an.Name] = an
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		an, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, an)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// matchAny reports whether a package dir (relative to the module root,
// "." for the root package) matches any go-style pattern: "./..." matches
// everything, "./x/..." a subtree, "./x" or "x" one directory.
func matchAny(dir string, patterns []string) bool {
	dir = filepath.ToSlash(dir)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == ".":
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if dir == base || strings.HasPrefix(dir, base+"/") {
				return true
			}
		default:
			if dir == pat {
				return true
			}
		}
	}
	return false
}
