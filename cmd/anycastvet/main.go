// Command anycastvet runs the repository's custom static-analysis suite
// (internal/analysis) over the module and reports invariant violations:
// nondeterminism in replay-critical packages, dropped errors on the
// network paths, mutex misuse, panics in library code, goroutines with no
// join/cancel path, dnswire net I/O that ignores the caller's ctx,
// bare-float64 latency/distance quantities that bypass internal/units,
// exported mutex-holding types with no documented locking contract,
// order-dependent map iteration (or wall-clock/global-rand use) reachable
// from the replay roots, allocation-forcing constructs in //perf:hotpath
// functions, lock-order deadlock cycles plus double locks and
// some-paths-only unlocks found by held-lock dataflow over the
// control-flow graph (lockorder), and flow-sensitive error mishandling —
// errors overwritten before any check, nil checks reading a
// shadowed-out err, results dereferenced on the error path (errflow).
//
// The whole module is loaded and type-checked once; cross-package facts
// (replay reachability, hot-path annotations, the global
// lock-acquisition-order graph) always reflect the full module even when
// the report is narrowed to a package pattern.
//
// Usage:
//
//	go run ./cmd/anycastvet ./...              # whole module
//	go run ./cmd/anycastvet ./internal/sim/... # one subtree
//	go run ./cmd/anycastvet -json ./...        # machine-readable output
//	go run ./cmd/anycastvet -sarif ./...       # SARIF 2.1.0 output
//	go run ./cmd/anycastvet -list              # describe the analyzers
//	go run ./cmd/anycastvet -checks replaysafety,hotpathalloc ./...
//	go run ./cmd/anycastvet -timings ./...     # per-analyzer wall-clock on stderr
//	go run ./cmd/anycastvet -writebaseline vet_baseline.json ./...
//	go run ./cmd/anycastvet -baseline vet_baseline.json ./...
//
// -writebaseline records the current diagnostics as grandfathered;
// -baseline filters them out of later runs so a new analyzer can land
// with existing violations tolerated and ratcheted down (regenerate
// after each fix; new violations are never absorbed).
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anycastcdn/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	list := flag.Bool("list", false, "list analyzers and exit")
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	timings := flag.Bool("timings", false, "print per-analyzer wall-clock timings to stderr")
	baselinePath := flag.String("baseline", "", "filter diagnostics against a baseline file (see -writebaseline)")
	writeBaseline := flag.String("writebaseline", "", "write current diagnostics to a baseline file and exit")
	flag.Parse()

	if *list {
		for _, an := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", an.Name, an.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "anycastvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anycastvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var selected []*analysis.Package
	for _, pkg := range pkgs {
		if matchAny(pkg.Dir, patterns) {
			selected = append(selected, pkg)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "anycastvet: no packages match %v\n", patterns)
		os.Exit(2)
	}

	// Facts come from the whole module; the pattern only narrows where
	// diagnostics are reported.
	mod := analysis.NewModule(pkgs)
	diags, perAnalyzer := analysis.RunModule(mod, selected, analyzers)
	if *timings {
		for _, tm := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "anycastvet: %-16s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err == nil {
			err = analysis.WriteBaseline(f, diags)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "anycastvet: wrote %d diagnostic(s) to baseline %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
		base, err := analysis.ReadBaseline(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
		diags = base.Filter(diags)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "anycastvet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "anycastvet: %d package(s), %d diagnostic(s)\n", len(selected), len(diags))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, an := range all {
		byName[an.Name] = an
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		an, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, an)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// matchAny reports whether a package dir (relative to the module root,
// "." for the root package) matches any go-style pattern: "./..." matches
// everything, "./x/..." a subtree, "./x" or "x" one directory.
func matchAny(dir string, patterns []string) bool {
	dir = filepath.ToSlash(dir)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == ".":
			return true
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if dir == base || strings.HasPrefix(dir, base+"/") {
				return true
			}
		default:
			if dir == pat {
				return true
			}
		}
	}
	return false
}
