module anycastcdn

go 1.22
