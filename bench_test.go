package anycastcdn

// The benchmark harness regenerates every table and figure of the paper
// (one Benchmark per experiment; see DESIGN.md's per-experiment index) and
// measures the ablations DESIGN.md calls out. Figure benches report the
// headline quantity of their figure via b.ReportMetric so `go test
// -bench=.` doubles as a compact reproduction readout.

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"anycastcdn/internal/analysis"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/core"
	"anycastcdn/internal/experiments"
	"anycastcdn/internal/sim"
)

func defaultRoutingForBench() bgp.Config { return bgp.DefaultConfig() }

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// benchSetup runs one moderate simulation shared by all figure benches.
func benchSetup(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sim.DefaultConfig(1)
		cfg.Prefixes = 2500
		cfg.Days = 12
		res, err := sim.Run(cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchSuite = experiments.NewSuite(res)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	return benchSuite
}

// headline extracts the first numeric value of a report headline whose
// name contains key.
func headline(b *testing.B, r experiments.Report, key string) float64 {
	b.Helper()
	for _, h := range r.Lines {
		if !strings.Contains(h.Name, key) {
			continue
		}
		f := strings.FieldsFunc(h.Measured, func(r rune) bool {
			return (r < '0' || r > '9') && r != '.' && r != '-'
		})
		for _, tok := range f {
			if v, err := strconv.ParseFloat(tok, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

func BenchmarkFigure1(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure1()
	}
	b.ReportMetric(headline(b, r, "beyond the 5th"), "median-gain-5to9-ms")
}

func BenchmarkCDNSizeTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.CDNSizeTable()
		if r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure2()
	}
	b.ReportMetric(headline(b, r, "1st closest"), "median-1st-closest-km")
}

func BenchmarkFigure3(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure3()
	}
	b.ReportMetric(headline(b, r, ">= 25 ms"), "pct-requests-25ms-slower")
}

func BenchmarkFigure4(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure4()
	}
	b.ReportMetric(headline(b, r, "closest front-end"), "pct-at-closest")
}

func BenchmarkFigure5(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure5()
	}
	b.ReportMetric(headline(b, r, "any unicast improvement"), "pct-improvable-daily")
}

func BenchmarkFigure6(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure6()
	}
	b.ReportMetric(headline(b, r, "only one day"), "pct-poor-one-day")
}

func BenchmarkFigure7(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure7()
	}
	b.ReportMetric(headline(b, r, "switched within the week"), "pct-switched-weekly")
}

func BenchmarkFigure8(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure8()
	}
	b.ReportMetric(headline(b, r, "median switch distance"), "median-switch-km")
}

func BenchmarkFigure9(b *testing.B) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure9()
	}
	b.ReportMetric(headline(b, r, "EDNS-0 Median: weighted /24s improved"), "pct-weighted-improved")
}

// --- Ablations from DESIGN.md §5 ---

// ablationFigure9 runs Figure 9 under a predictor config and reports the
// improved/worse split.
func ablationFigure9(b *testing.B, cfg core.Config) {
	s := benchSetup(b)
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = s.Figure9WithConfig(cfg)
	}
	b.ReportMetric(headline(b, r, "improved"), "pct-improved")
	b.ReportMetric(headline(b, r, "worse"), "pct-worse")
}

func BenchmarkAblationMetricP25(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP25, MinMeasurements: 20})
}

func BenchmarkAblationMetricMedian(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricMedian, MinMeasurements: 20})
}

func BenchmarkAblationMetricP75(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP75, MinMeasurements: 20})
}

func BenchmarkAblationMetricP95(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP95, MinMeasurements: 20})
}

func BenchmarkAblationFloor5(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP25, MinMeasurements: 5})
}

func BenchmarkAblationFloor50(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP25, MinMeasurements: 50})
}

func BenchmarkAblationHybridMargin10(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP25, MinMeasurements: 20, HybridMarginMs: 10})
}

func BenchmarkAblationHybridMargin25(b *testing.B) {
	ablationFigure9(b, core.Config{Metric: core.MetricP25, MinMeasurements: 20, HybridMarginMs: 25})
}

// BenchmarkAblationCandidates measures Figure 1's justification for ten
// candidates: the simulation rerun with a smaller candidate set.
func BenchmarkAblationCandidates5(b *testing.B) {
	cfg := sim.DefaultConfig(5)
	cfg.Prefixes = 800
	cfg.Days = 2
	cfg.CandidateCount = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalBeacons() == 0 {
			b.Fatal("no beacons")
		}
	}
}

// BenchmarkAblationNoWeekendChurn turns the weekday/weekend churn
// asymmetry off and reports the weekly switched fraction (Figure 7's
// plateau disappears).
func BenchmarkAblationNoWeekendChurn(b *testing.B) {
	cfg := sim.DefaultConfig(5)
	cfg.Prefixes = 1500
	cfg.Days = 7
	routing := defaultRoutingForBench()
	routing.WeekendFactor = 1.0
	cfg.Routing = &routing
	var weekly float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cum := res.Passive.CumulativeSwitched(7)
		weekly = cum[6]
	}
	b.ReportMetric(weekly*100, "pct-switched-weekly")
}

// --- Extension experiments ---

func BenchmarkMetricStability(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if r := s.MetricStability(); r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkHybridDeployment(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if r := s.HybridDeployment(10); r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkTCPDisruption(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if r := s.TCPDisruption(); r.Table == nil {
			b.Fatal("no table")
		}
	}
}

func BenchmarkLoadShedding(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if r := s.LoadShedding(4); r.Table == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkAnycastvet measures a full-repo analysis run: the shared
// type-checked load amortized once, then every analyzer in the suite
// over every package per iteration (the same work the CI gate times
// with its 60s budget). Allocations are reported so an analyzer that
// starts copying per-package state shows up here before it shows up as
// wall-clock.
func BenchmarkAnycastvet(b *testing.B) {
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		b.Fatal(err)
	}
	mod := analysis.NewModule(pkgs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, _ := analysis.RunModule(mod, pkgs, analysis.Analyzers())
		if len(diags) != 0 {
			b.Fatalf("repo is not clean: %v", diags)
		}
	}
}

// BenchmarkAnycastvetDataflow measures the dataflow passes alone: a
// full-repo lockorder+errflow run per iteration, with a fresh Module
// each time so the once-cached module-wide lock facts (CFG
// construction, held-lock fixpoints, call-graph propagation, cycle
// detection) are actually recomputed rather than served from the
// sync.Once cache. This is the benchjson gate that catches the CFG or
// worklist fixpoint going quadratic.
func BenchmarkAnycastvetDataflow(b *testing.B) {
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		b.Fatal(err)
	}
	var dataflow []*analysis.Analyzer
	for _, an := range analysis.Analyzers() {
		if an.Name == "lockorder" || an.Name == "errflow" {
			dataflow = append(dataflow, an)
		}
	}
	if len(dataflow) != 2 {
		b.Fatalf("expected lockorder and errflow in the suite, got %d analyzers", len(dataflow))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := analysis.NewModule(pkgs)
		diags, _ := analysis.RunModule(mod, pkgs, dataflow)
		if len(diags) != 0 {
			b.Fatalf("repo is not clean: %v", diags)
		}
	}
}

// BenchmarkSimulationDay measures raw simulation throughput.
func BenchmarkSimulationDay(b *testing.B) {
	cfg := sim.DefaultConfig(9)
	cfg.Prefixes = 1000
	cfg.Days = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
