// Package anycastcdn is a simulation and analysis library reproducing
// "Analyzing the Performance of an Anycast CDN" (Calder et al., IMC 2015).
//
// The library has three layers:
//
//   - A synthetic Internet + CDN substrate: world geography, a CDN
//     autonomous system with dozens of front-ends, BGP-style anycast
//     routing with the real-world pathologies the paper diagnosed, client
//     populations, LDNS infrastructure, and a latency model.
//   - The paper's measurement apparatus: the JavaScript-beacon protocol
//     (four targets per execution, chosen by the authoritative DNS) and
//     passive request logs.
//   - The paper's contribution: the history-based prediction scheme that
//     drives DNS redirection for clients anycast underserves (§6), plus
//     the experiment suite that regenerates every table and figure.
//
// Quick start:
//
//	res, err := anycastcdn.Run(anycastcdn.DefaultConfig(1))
//	if err != nil { ... }
//	suite := anycastcdn.NewSuite(res)
//	fmt.Println(suite.Figure3().Render())
//
// All randomness derives from Config.Seed; identical configurations
// produce byte-identical results regardless of parallelism.
package anycastcdn

import (
	"context"
	"time"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/core"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/experiments"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/frontend"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/load"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/testbed"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/trace"
	"anycastcdn/internal/units"
)

// Simulation layer.
type (
	// Config is the top-level simulation configuration.
	Config = sim.Config
	// Result is a completed simulation run.
	Result = sim.Result
	// World is the built simulation environment.
	World = sim.World
	// Measurement is one beacon execution (four latency samples).
	Measurement = beacon.Measurement
	// Assignment is an anycast routing outcome for one client and day.
	Assignment = bgp.Assignment
	// RoutingClient is the routing-layer view of a client prefix.
	RoutingClient = bgp.Client
	// Client is one client /24 of the population.
	Client = clients.Client
	// Deployment is the CDN's front-end deployment and addressing.
	Deployment = cdn.Deployment
	// Metro is a world metro area.
	Metro = geo.Metro
	// Point is a position on Earth.
	Point = geo.Point
	// SiteID identifies a CDN site.
	SiteID = topology.SiteID
	// LatencyConfig parameterizes the RTT model.
	LatencyConfig = latency.Config
	// LDNS is a resolver of the DNS substrate.
	LDNS = dns.LDNS
	// Millis is a latency in milliseconds (see internal/units).
	Millis = units.Millis
	// Kilometers is a distance in kilometers (see internal/units).
	Kilometers = units.Kilometers
)

// Prediction layer (the paper's §6 contribution).
type (
	// Predictor builds per-group redirection decisions.
	Predictor = core.Predictor
	// PredictorConfig parameterizes the predictor.
	PredictorConfig = core.Config
	// Predictions is a trained group→target mapping.
	Predictions = core.Predictions
	// Target is a redirection choice (anycast or a front-end).
	Target = core.Target
	// Observation is one latency measurement for training/evaluation.
	Observation = core.Observation
	// Evaluation is a next-interval outcome for one client.
	Evaluation = core.Evaluation
	// Evaluator scores predictions on the following interval.
	Evaluator = core.Evaluator
	// Grouping selects ECS-prefix or LDNS aggregation.
	Grouping = core.Grouping
)

// Prediction constants re-exported from the core package.
const (
	// ByPrefix groups clients by ECS /24 prefix.
	ByPrefix = core.ByPrefix
	// ByLDNS groups clients by resolver.
	ByLDNS = core.ByLDNS
	// MetricP25 is the paper's 25th-percentile prediction metric.
	MetricP25 = core.MetricP25
	// MetricMedian is the median prediction metric.
	MetricMedian = core.MetricMedian
)

// AnycastTarget is the "stay on anycast" redirection decision.
var AnycastTarget = core.AnycastTarget

// Experiment layer.
type (
	// Suite regenerates the paper's tables and figures from a run.
	Suite = experiments.Suite
	// Report is one regenerated table or figure with paper-vs-measured
	// headlines.
	Report = experiments.Report
	// Figure is a renderable set of series.
	Figure = stats.Figure
	// Series is one line of a figure.
	Series = stats.Series
	// Tracer reconstructs traceroute-style paths for case studies.
	Tracer = trace.Tracer
	// Diagnosis classifies a client's anycast pathology.
	Diagnosis = trace.Diagnosis
)

// Fault-injection layer (internal/faults): deterministic, seed-stable
// disruption scenarios and the resilience analysis over them.
type (
	// Scenario is a typed list of timed fault events.
	Scenario = faults.Scenario
	// FaultEvent is one timed disruption (drain, flap, ldns-outage or
	// inflate).
	FaultEvent = faults.Event
	// FaultKind classifies a fault event.
	FaultKind = faults.Kind
	// FaultInjector is a scenario compiled against a built world.
	FaultInjector = faults.Injector
	// ResilienceReport quantifies a scenario against the fault-free
	// baseline: per-day catchment shift, latency deltas, recovery.
	ResilienceReport = experiments.ResilienceReport
	// EventImpact is one event's entry in a ResilienceReport.
	EventImpact = experiments.EventImpact
)

// Fault event kinds re-exported from the faults package.
const (
	// FaultDrain takes a front-end out of service.
	FaultDrain = faults.Drain
	// FaultFlap withdraws a peering site's anycast route.
	FaultFlap = faults.Flap
	// FaultLDNSOutage fails a region's ISP resolvers.
	FaultLDNSOutage = faults.LDNSOutage
	// FaultInflate adds latency to a region's paths.
	FaultInflate = faults.Inflate
	// FaultSurge multiplies a region's query volume (a flash crowd).
	FaultSurge = faults.Surge
)

// Load-aware anycast layer (internal/load): per-front-end capacities,
// the FastRoute-style distributed watermark controller with DNS-layer
// spillover to deeper rings, and the naive route-withdrawal strategy it
// replaces. Activate by setting Config.LoadManager; compare policies
// under a flash crowd with LoadManagement.
type (
	// LoadManagerConfig activates load-aware anycast in the day loop.
	LoadManagerConfig = load.ManagerConfig
	// LoadPolicy selects the overload response (static, fastroute,
	// withdraw).
	LoadPolicy = load.Policy
	// SiteUtil is one front-end's daily load picture under management.
	SiteUtil = sim.SiteUtil
	// LoadManagementReport compares the overload policies under one
	// surge scenario.
	LoadManagementReport = experiments.LoadManagementReport
	// LoadArm is one policy's outcome inside a LoadManagementReport.
	LoadArm = experiments.LoadArm
)

// Load policies re-exported from the load package.
const (
	// LoadStatic observes utilization but never redirects.
	LoadStatic = load.Static
	// LoadFastRoute sheds excess to deeper rings at the DNS layer.
	LoadFastRoute = load.FastRoute
	// LoadWithdraw withdraws overloaded routes outright (the naive
	// strategy that cascades).
	LoadWithdraw = load.Withdraw
)

// ParseLoadPolicy parses a policy name ("static", "fastroute",
// "withdraw").
func ParseLoadPolicy(s string) (LoadPolicy, error) { return load.ParsePolicy(s) }

// LoadManagement simulates cfg under sc once per overload policy and
// reports peak utilization, overload and withdrawal site-days, shed
// volume, and the latency cost of FastRoute's redirections.
func LoadManagement(cfg Config, sc Scenario) (*LoadManagementReport, error) {
	return experiments.LoadManagement(cfg, sc)
}

// StreamLoadManagement is LoadManagement over the streaming simulator; it
// renders byte-identically to the batch path.
func StreamLoadManagement(cfg Config, sc Scenario) (*LoadManagementReport, error) {
	return experiments.StreamLoadManagement(cfg, sc)
}

// ParseScenario parses the scenario text form, e.g.
// "drain paris day=3 for=2; inflate europe day=5 ms=40".
func ParseScenario(text string) (Scenario, error) { return faults.ParseScenario(text) }

// Resilience simulates cfg twice — fault-free and under sc — and reports
// catchment shift, latency deltas, and time-to-recover per event.
func Resilience(cfg Config, sc Scenario) (*ResilienceReport, error) {
	return experiments.Resilience(cfg, sc)
}

// Live loopback testbed layer.
type (
	// Testbed is a running loopback CDN miniature: real HTTP front-ends,
	// a real authoritative DNS server with EDNS Client Subnet, and
	// injected path latency.
	Testbed = testbed.Testbed
	// TestbedConfig wires a testbed to routing and latency callbacks.
	TestbedConfig = testbed.Config
	// FrontEndSpec declares one testbed front-end.
	FrontEndSpec = testbed.FrontEndSpec
	// BeaconClient performs the §3.2.2 measurement sequence against a
	// testbed.
	BeaconClient = testbed.BeaconClient
	// BeaconResult is one live beacon execution.
	BeaconResult = testbed.BeaconResult
)

// Data-path layer (the intro's split-TCP architecture).
type (
	// OriginBackend is the "data center" HTTP server front-ends relay to.
	OriginBackend = frontend.Backend
	// FrontEndProxy terminates client TCP connections and relays to the
	// backend over warm persistent connections.
	FrontEndProxy = frontend.Proxy
	// FetchResult is one timed client fetch through the data path.
	FetchResult = frontend.FetchResult
)

// NewOriginBackend starts a loopback origin server.
func NewOriginBackend() (*OriginBackend, error) { return frontend.NewBackend() }

// NewFrontEndProxy starts a front-end relaying to backendAddr across a
// path with the given RTT.
func NewFrontEndProxy(backendAddr string, backendRTT time.Duration) (*FrontEndProxy, error) {
	return frontend.NewProxy(backendAddr, backendRTT)
}

// ColdFetch performs one request over a fresh TCP connection across a
// path with the given emulated RTT.
func ColdFetch(ctx context.Context, addr string, rtt time.Duration, query string) (FetchResult, error) {
	return frontend.ColdFetch(ctx, addr, rtt, query)
}

// TestbedDomain is the testbed's DNS zone (cdn.test).
const TestbedDomain = testbed.Domain

// StartTestbed brings up a loopback testbed.
func StartTestbed(cfg TestbedConfig) (*Testbed, error) { return testbed.Start(cfg) }

// NewBeaconClient builds a beacon client against a running testbed.
func NewBeaconClient(tb *Testbed) *BeaconClient { return testbed.NewBeaconClient(tb) }

// DefaultConfig returns the experiment-scale configuration for a seed.
func DefaultConfig(seed uint64) Config { return sim.DefaultConfig(seed) }

// BuildWorld constructs the simulation environment without running it.
func BuildWorld(cfg Config) (*World, error) { return sim.BuildWorld(cfg) }

// Run builds the world and simulates cfg.Days days of traffic,
// measurements and routing dynamics.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// DayResult is one streamed simulation day; its buffers are reused for
// the next day (see sim.DayResult for the ownership contract).
type DayResult = sim.DayResult

// Stream simulates day by day, invoking fn with each day's outputs and
// retaining only one day in memory — the mode for paper-scale runs
// (millions of client /24s) whose full Result would not fit.
func Stream(cfg Config, fn func(DayResult) error) error { return sim.Stream(cfg, fn) }

// StreamWorld streams over an already-built world.
func StreamWorld(cfg Config, w *World, fn func(DayResult) error) error {
	return sim.StreamWorld(cfg, w, fn)
}

// NewSuite wraps a run for experiment regeneration.
func NewSuite(res *Result) *Suite { return experiments.NewSuite(res) }

// StreamSuite computes the passive-log experiments online over a
// streaming run, rendering byte-identical reports to the batch Suite.
type StreamSuite = experiments.StreamSuite

// NewStreamSuite prepares streaming aggregators over a built world; feed
// it with StreamWorld via its Observe method, or call its Run.
func NewStreamSuite(cfg Config, w *World) *StreamSuite { return experiments.NewStreamSuite(cfg, w) }

// CDNSizeTable reproduces the §4 CDN deployment comparison.
func CDNSizeTable() Report { return experiments.CDNSizeTable() }

// NewPredictor builds a §6 predictor.
func NewPredictor(cfg PredictorConfig) *Predictor { return core.NewPredictor(cfg) }

// DefaultPredictorConfig is the paper's predictor configuration:
// 25th-percentile metric, 20-measurement floor.
func DefaultPredictorConfig() PredictorConfig { return core.DefaultConfig() }

// ObservationsFromMeasurement expands one beacon measurement into its four
// predictor observations.
func ObservationsFromMeasurement(m Measurement) []Observation {
	return core.FromMeasurement(m)
}

// NewTracer builds a case-study tracer over a world.
func NewTracer(w *World) *Tracer {
	return &trace.Tracer{Router: w.Router, Latency: w.Latency}
}

// WorldMetros returns the built-in world metro catalog.
func WorldMetros() []Metro { return geo.World() }
