#!/usr/bin/env sh
# ci.sh — the full local gate, in the order failures are cheapest:
#
#   1. build everything
#   2. go vet (stdlib checks)
#   3. anycastvet (this repo's invariant suite: determinism, unchecked
#      errors, mutex hygiene, no panics in library code)
#   4. unit tests (which re-run anycastvet over the tree via
#      internal/analysis/self_test.go)
#   5. race detector over the concurrent packages: the dnswire servers,
#      the parallel simulation core, and the loopback testbed
#
# Usage: ./ci.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== anycastvet ./...'
go run ./cmd/anycastvet ./...

echo '== go test ./...'
go test ./...

echo '== go test -race (concurrent packages)'
go test -race ./internal/dnswire/ ./internal/sim/ ./internal/testbed/

echo '== ci.sh: all gates passed'
