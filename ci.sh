#!/usr/bin/env sh
# ci.sh — the full local gate, in the order failures are cheapest:
#
#   1. build everything
#   2. go vet (stdlib checks)
#   3. anycastvet (this repo's invariant suite: determinism, unchecked
#      errors, mutex hygiene, no panics in library code, goroutine
#      join/cancel paths, ctx propagation in dnswire, dimensional safety
#      for ms/km quantities, documented locking contracts, replay-safe
#      map iteration, allocation-free hot paths, lock-order deadlock
#      cycles, flow-sensitive error tracking) — the JSON run leaves
#      anycastvet.json in the CI log as a machine-readable artifact,
#      prints per-analyzer timings (artifact: vet_timings.txt), and
#      fails if the whole pass exceeds 60 seconds or any single
#      analyzer exceeds 20 seconds (the suite runs in a couple of
#      seconds; an order-of-magnitude regression means an analyzer —
#      with the dataflow passes, most plausibly the CFG fixpoint —
#      went quadratic). A second run emits anycastvet.sarif for SARIF
#      consumers (GitHub code scanning). Then explicit passes of the
#      lifecycle, dimensional, replay/hot-path, and dataflow analyzers
#      so a regression in any of them is named in the CI log, not
#      buried in the full-suite run
#   4. unit tests in -short mode (which re-run anycastvet over the tree
#      via internal/analysis/self_test.go), then the long-running targets
#      as named steps so a failure is attributable in the CI log: the full
#      experiment suites, the 1M-prefix x 30-day streaming smoke that
#      proves paper-scale runs stay inside their wall-clock and 2 GiB
#      memory budgets, the distributed-vs-single byte-identity gate (the
#      sharded worker fleet must merge to the exact reports — and, with a
#      load policy, the exact utilization table — the single process
#      writes), and the 4M-prefix x 30-day x 4-worker distributed smoke
#      with its 2 GiB per-worker peak-RSS budget
#   5. fuzz smoke: 5 seconds each on the DNS wire decoder, the /24
#      parser, and the fault-scenario parser, enough to replay the corpus
#      and shake out shallow panics
#   6. race detector over the concurrent packages: the dnswire servers,
#      the parallel simulation core, the fault-injection layer, the
#      loopback testbed, the HTTP front-ends, the client population
#      generator, the load manager, the columnar log, the stats
#      kernels, and the distributed coordinator/worker layer
#   7. coverage floor: the scenario engine, the simulation core, the
#      analysis engine, and the load-management layer together must keep
#      >= 80% statement coverage (artifact: cover_repro.out)
#   8. benchmarks at -benchtime=1x, summarized by cmd/benchjson into the
#      machine-readable artifact BENCH_repro.json and gated against the
#      checked-in BENCH_baseline.json: the baseline's benchmarks may not
#      regress past 15%, BenchmarkAblationFloor50 must stay >= 3x faster
#      than its pre-optimization baseline, the xrand substream and
#      latency sampling benchmarks must report 0 allocs/op, and the
#      simulation cores must stay at least 3x below their pre-columnar
#      B/op (RunWorld/StreamWorld baseline was ~223 MB/op; the ceiling is
#      74 MB/op), and the whole-fleet distributed run must stay under
#      65 MB/op (frame buffers are reused, so the bill is dominated by
#      the two worker world builds); a failure names the benchmark and
#      both the baseline and current values
#
# Usage: ./ci.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== anycastvet -json -timings ./... (artifacts: anycastvet.json, vet_timings.txt)'
vet_start=$(date +%s)
if ! go run ./cmd/anycastvet -json -timings ./... > anycastvet.json 2> vet_timings.txt; then
	cat vet_timings.txt >&2
	echo 'ci.sh: anycastvet reported violations; offending check(s):' >&2
	grep -o '"check": *"[a-z0-9]*"' anycastvet.json | sort -u >&2
	exit 1
fi
cat vet_timings.txt
vet_elapsed=$(( $(date +%s) - vet_start ))
echo "anycastvet pass took ${vet_elapsed}s (budget 60s, 20s per analyzer)"
if [ "$vet_elapsed" -gt 60 ]; then
	echo "ci.sh: anycastvet took ${vet_elapsed}s, over the 60s budget; an analyzer has gone quadratic" >&2
	exit 1
fi
awk '/^anycastvet:/ {
	ms = $3; sub(/ms$/, "", ms)
	if (ms + 0 > 20000) { printf "ci.sh: analyzer %s took %sms, over the 20s per-analyzer budget\n", $2, ms; bad = 1 }
} END { exit bad }' vet_timings.txt

echo '== anycastvet -sarif ./... (artifact: anycastvet.sarif)'
go run ./cmd/anycastvet -sarif ./... > anycastvet.sarif

echo '== anycastvet -checks goroutineleak,ctxpropagation ./...'
go run ./cmd/anycastvet -checks goroutineleak,ctxpropagation ./...

echo '== anycastvet -checks unitsafety,lockdoc ./...'
go run ./cmd/anycastvet -checks unitsafety,lockdoc ./...

echo '== anycastvet -checks replaysafety,hotpathalloc ./...'
go run ./cmd/anycastvet -checks replaysafety,hotpathalloc ./...

echo '== anycastvet -checks lockorder,errflow ./...'
go run ./cmd/anycastvet -checks lockorder,errflow ./...

echo '== go test ./... (short mode; the long-running targets get named steps below)'
go test -short ./...

echo '== long-running experiment suites (skipped above by -short)'
go test -run 'TestAllRuns|TestDeploymentDensity' ./internal/experiments/

echo '== 1M-prefix x 30-day streaming smoke (bounded memory + wall clock)'
go test -run TestStreamWorldMillionPrefixSmoke -v ./internal/sim/

echo '== distributed-vs-single byte-identity (reports must match exactly, with and without a load policy)'
go build -o anycastsim.ci ./cmd/anycastsim
rm -rf ci_dist_out
mkdir -p ci_dist_out/single ci_dist_out/dist ci_dist_out/single_lm ci_dist_out/dist_lm
./anycastsim.ci -prefixes 2000 -days 9 -reports -out ci_dist_out/single > /dev/null
./anycastsim.ci -prefixes 2000 -days 9 -distribute 3 -out ci_dist_out/dist > /dev/null
cmp ci_dist_out/single/reports.txt ci_dist_out/dist/reports.txt || {
	echo 'ci.sh: distributed reports differ from single-process' >&2; exit 1; }
./anycastsim.ci -prefixes 2000 -days 9 -reports -loadpolicy fastroute \
	-scenario 'surge south-america day=3 for=3 qps=6' -out ci_dist_out/single_lm > /dev/null
./anycastsim.ci -prefixes 2000 -days 9 -distribute 3 -loadpolicy fastroute \
	-scenario 'surge south-america day=3 for=3 qps=6' -out ci_dist_out/dist_lm > /dev/null
cmp ci_dist_out/single_lm/reports.txt ci_dist_out/dist_lm/reports.txt || {
	echo 'ci.sh: load-managed distributed reports differ from single-process' >&2; exit 1; }
cmp ci_dist_out/single_lm/utilization.csv ci_dist_out/dist_lm/utilization.csv || {
	echo 'ci.sh: load-managed distributed utilization differs from single-process' >&2; exit 1; }
echo 'distributed reports and utilization byte-identical to single-process'

echo '== 4M-prefix x 30-day x 4-worker distributed smoke (per-worker peak RSS <= 2 GiB)'
./anycastsim.ci -prefixes 4000000 -days 30 -beaconrate 0 -distribute 4 \
	-out ci_dist_out/scale | tee ci_dist_out/scale.log
awk '/peak RSS/ {
	n += 1
	rss = $(NF-1)
	if (rss + 0 > 2048) { printf "ci.sh: worker peak RSS %.1f MiB exceeds the 2 GiB budget\n", rss; bad = 1 }
} END {
	if (n != 4) { printf "ci.sh: expected 4 worker RSS reports, saw %d\n", n; exit 1 }
	exit bad
}' ci_dist_out/scale.log
rm -rf ci_dist_out anycastsim.ci

echo '== fuzz smoke (5s per target)'
go test -run '^$' -fuzz FuzzMessageUnpack -fuzztime 5s ./internal/dnswire/
go test -run '^$' -fuzz FuzzParsePrefix24 -fuzztime 5s ./internal/netaddr/
go test -run '^$' -fuzz FuzzParseScenario -fuzztime 5s ./internal/faults/

echo '== go test -race (concurrent packages)'
go test -race ./internal/dnswire/ ./internal/sim/ ./internal/faults/ ./internal/testbed/ ./internal/frontend/ ./internal/clients/ ./internal/load/ ./internal/logs/ ./internal/stats/ ./internal/distsim/

echo '== coverage floor: internal/faults + internal/sim + internal/analysis + internal/load >= 80% (artifact: cover_repro.out)'
go test -coverpkg=anycastcdn/internal/faults,anycastcdn/internal/sim,anycastcdn/internal/analysis,anycastcdn/internal/load \
	-coverprofile=cover_repro.out ./internal/faults/ ./internal/sim/ ./internal/analysis/ ./internal/load/ > /dev/null
total=$(go tool cover -func=cover_repro.out | awk '/^total:/ { gsub("%", "", $3); print $3 }')
awk -v t="$total" 'BEGIN {
	if (t + 0 < 80) { printf "ci.sh: faults+sim+analysis+load coverage %.1f%% is below the 80%% floor\n", t; exit 1 }
	printf "faults+sim+analysis+load coverage: %.1f%% (floor 80%%)\n", t
}'

echo '== benchmarks at -benchtime=1x, gated against BENCH_baseline.json (artifact: BENCH_repro.json)'
go test -run '^$' -bench . -benchtime 1x -json ./... | go run ./cmd/benchjson \
	-o BENCH_repro.json \
	-compare BENCH_baseline.json -tolerance 0.15 \
	-minspeedup BenchmarkAblationFloor50=3 \
	-maxallocs BenchmarkSubstream=0,BenchmarkSampleRTT=0 \
	-maxbytes BenchmarkRunWorld=74000000,BenchmarkStreamWorld=74000000,BenchmarkDistWorld=55000000

echo '== ci.sh: all gates passed'
