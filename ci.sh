#!/usr/bin/env sh
# ci.sh — the full local gate, in the order failures are cheapest:
#
#   1. build everything
#   2. go vet (stdlib checks)
#   3. anycastvet (this repo's invariant suite: determinism, unchecked
#      errors, mutex hygiene, no panics in library code, goroutine
#      join/cancel paths, ctx propagation in dnswire, dimensional safety
#      for ms/km quantities, documented locking contracts) — the JSON run
#      leaves anycastvet.json in the CI log as a machine-readable
#      artifact and names the offending check on failure, then explicit
#      passes of the lifecycle and dimensional analyzers so a regression
#      in any of them is named in the CI log, not buried in the
#      full-suite run
#   4. unit tests (which re-run anycastvet over the tree via
#      internal/analysis/self_test.go)
#   5. fuzz smoke: 5 seconds each on the DNS wire decoder and the /24
#      parser, enough to replay the corpus and shake out shallow panics
#   6. race detector over the concurrent packages: the dnswire servers,
#      the parallel simulation core, the loopback testbed, the HTTP
#      front-ends, and the client population generator
#
# Usage: ./ci.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== anycastvet -json ./... (artifact: anycastvet.json)'
if ! go run ./cmd/anycastvet -json ./... > anycastvet.json; then
	echo 'ci.sh: anycastvet reported violations; offending check(s):' >&2
	grep -o '"check": *"[a-z0-9]*"' anycastvet.json | sort -u >&2
	exit 1
fi

echo '== anycastvet -checks goroutineleak,ctxpropagation ./...'
go run ./cmd/anycastvet -checks goroutineleak,ctxpropagation ./...

echo '== anycastvet -checks unitsafety,lockdoc ./...'
go run ./cmd/anycastvet -checks unitsafety,lockdoc ./...

echo '== go test ./...'
go test ./...

echo '== fuzz smoke (5s per target)'
go test -run '^$' -fuzz FuzzMessageUnpack -fuzztime 5s ./internal/dnswire/
go test -run '^$' -fuzz FuzzParsePrefix24 -fuzztime 5s ./internal/netaddr/

echo '== go test -race (concurrent packages)'
go test -race ./internal/dnswire/ ./internal/sim/ ./internal/testbed/ ./internal/frontend/ ./internal/clients/

echo '== ci.sh: all gates passed'
