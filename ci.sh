#!/usr/bin/env sh
# ci.sh — the full local gate, in the order failures are cheapest:
#
#   1. build everything
#   2. go vet (stdlib checks)
#   3. anycastvet (this repo's invariant suite: determinism, unchecked
#      errors, mutex hygiene, no panics in library code, goroutine
#      join/cancel paths, ctx propagation in dnswire) — plus a second,
#      explicit pass of the two lifecycle analyzers so a regression in
#      either is named in the CI log, not buried in the full-suite run
#   4. unit tests (which re-run anycastvet over the tree via
#      internal/analysis/self_test.go)
#   5. race detector over the concurrent packages: the dnswire servers,
#      the parallel simulation core, the loopback testbed, the HTTP
#      front-ends, and the client population generator
#
# Usage: ./ci.sh
set -eu

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== anycastvet ./...'
go run ./cmd/anycastvet ./...

echo '== anycastvet -checks goroutineleak,ctxpropagation ./...'
go run ./cmd/anycastvet -checks goroutineleak,ctxpropagation ./...

echo '== go test ./...'
go test ./...

echo '== go test -race (concurrent packages)'
go test -race ./internal/dnswire/ ./internal/sim/ ./internal/testbed/ ./internal/frontend/ ./internal/clients/

echo '== ci.sh: all gates passed'
